//! Device-resident GPMA storage: the PMA slot array in simulated GPU global
//! memory, shared by the lock-based (GPMA) and lock-free (GPMA+) update
//! algorithms.
//!
//! Layout (Figure 5): one edge per slot, keyed `src << 32 | dst`, sorted with
//! gaps (`EMPTY`). Every vertex owns an immortal *guard* entry `(v, ∞)` so
//! row boundaries survive arbitrary edge churn. An implicit segment tree over
//! fixed-size leaves carries the density thresholds of Figure 3. A per-leaf
//! prefix-max array (rebuilt by a kernel after each batch) makes leaf lookup
//! a coalesced binary search.

use gpma_graph::edge::{guard_key, Edge, GUARD_DST};
use gpma_pma::{DensityConfig, Geometry};
use gpma_sim::{primitives, Device, DeviceBuffer, Lane};

/// Gap sentinel in the device key array (same as the CPU PMA).
pub const EMPTY: u64 = u64::MAX;

/// The device-resident dynamic graph store.
pub struct GpmaStorage {
    /// Slot keys; `EMPTY` marks gaps.
    pub keys: DeviceBuffer<u64>,
    /// Slot values (edge weights; unused for guards).
    pub vals: DeviceBuffer<u64>,
    /// Inclusive prefix max of per-leaf max keys (empty leaves inherit),
    /// non-decreasing — the device-side leaf index.
    pub leaf_max_prefix: DeviceBuffer<u64>,
    geom: Geometry,
    density: DensityConfig,
    num_vertices: u32,
    /// Live entries including guards, tracked on the device so concurrent
    /// segment merges can adjust it atomically.
    len_counter: DeviceBuffer<u64>,
}

impl GpmaStorage {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Bulk-build from an edge list (duplicates keep the last weight).
    /// Inserts one guard entry per vertex. Sized for ~60% root density.
    pub fn build(dev: &Device, num_vertices: u32, edges: &[Edge]) -> Self {
        let mut entries: Vec<(u64, u64)> = edges
            .iter()
            .map(|e| {
                assert!(e.dst != GUARD_DST, "dst {} is the guard sentinel", e.dst);
                assert!(e.src < num_vertices && e.dst < num_vertices, "edge out of range");
                (e.key(), e.weight)
            })
            .collect();
        entries.extend((0..num_vertices).map(|v| (guard_key(v), 0)));
        entries.sort_by_key(|&(k, _)| k);
        // Last write wins for duplicate (src, dst) pairs.
        entries.reverse();
        entries.dedup_by_key(|&mut (k, _)| k);
        entries.reverse();

        let n = entries.len();
        let geom = Self::geometry_for(n);
        let mut storage = GpmaStorage {
            keys: DeviceBuffer::filled(EMPTY, geom.capacity()),
            vals: DeviceBuffer::new(geom.capacity()),
            leaf_max_prefix: DeviceBuffer::new(geom.num_segs),
            geom,
            density: DensityConfig::default(),
            num_vertices,
            len_counter: DeviceBuffer::new(1),
        };
        storage.len_counter.host_write(0, n as u64);

        // Upload sorted entries and redispatch evenly (device kernels so the
        // build is charged like the paper's initial load).
        let src_keys = DeviceBuffer::from_slice(&entries.iter().map(|&(k, _)| k).collect::<Vec<_>>());
        let src_vals = DeviceBuffer::from_slice(&entries.iter().map(|&(_, v)| v).collect::<Vec<_>>());
        storage.redispatch_window(dev, 0..storage.geom.capacity(), &src_keys, &src_vals, n);
        storage.rebuild_leaf_max(dev);
        storage
    }

    /// Geometry for `n` live entries at ~60% root density.
    pub(crate) fn geometry_for(n: usize) -> Geometry {
        let min_slots = ((n as f64 / 0.6).ceil() as usize).max(64);
        Geometry::for_capacity(min_slots)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Segment-tree geometry (leaf size, level count, capacity).
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// The density thresholds of Figure 3.
    pub fn density_config(&self) -> DensityConfig {
        self.density
    }

    /// Vertex count this store was built for (one guard entry each).
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Total slots in the PMA array (live entries + gaps).
    pub fn capacity(&self) -> usize {
        self.geom.capacity()
    }

    /// Live entries (including the `num_vertices` guards).
    pub fn len(&self) -> usize {
        self.len_counter.host_read(0) as usize
    }

    /// True when the store holds no live entries (not even guards).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live real edges (excluding guards).
    pub fn num_edges(&self) -> usize {
        self.len() - self.num_vertices as usize
    }

    pub(crate) fn add_len_delta(&self, lane: &mut Lane, delta: i64) {
        // Two's-complement wrapping add implements signed deltas on the u64
        // counter (same trick CUDA code uses with atomicAdd of negatives).
        self.len_counter.atomic_add(lane, 0, delta as u64);
    }

    /// Is the slot a live, real edge (Algorithm 2/3's `IsEntryExist`)?
    #[inline]
    pub fn is_entry(key: u64) -> bool {
        key != EMPTY && (key as u32) != GUARD_DST
    }

    /// Host-side length adjustment (used by host-orchestrated merges, which
    /// run between launches and therefore cannot race device lanes).
    pub(crate) fn host_adjust_len(&mut self, delta: i64) {
        let cur = self.len_counter.host_read(0);
        self.len_counter.host_write(0, cur.wrapping_add(delta as u64));
    }

    /// Lazy deletions for the sliding-window model (§6.1): mark each slot
    /// `EMPTY` without density maintenance; the holes are recycled by later
    /// insert merges. A CAS guards against duplicate deletes of one key.
    pub fn delete_lazy(&mut self, dev: &Device, edges: &[Edge]) -> usize {
        if edges.is_empty() {
            return 0;
        }
        for e in edges {
            assert!(e.dst != GUARD_DST, "cannot delete a guard entry");
        }
        let del_keys =
            DeviceBuffer::from_slice(&edges.iter().map(|e| e.key()).collect::<Vec<_>>());
        let deleted = DeviceBuffer::<u64>::new(1);
        let keys = &self.keys;
        let this = &*self;
        dev.launch("lazy_delete", edges.len(), |lane| {
            let key = del_keys.get(lane, lane.tid);
            if let Some(slot) = this.find_slot(lane, key) {
                if keys.atomic_cas(lane, slot, key, EMPTY) == key {
                    deleted.atomic_add(lane, 0, 1);
                }
            }
        });
        let n = deleted.host_read(0) as usize;
        self.host_adjust_len(-(n as i64));
        n
    }

    // ------------------------------------------------------------------
    // Leaf search
    // ------------------------------------------------------------------

    /// Rebuild the per-leaf prefix-max index with device kernels:
    /// leaf-local max, then a blocked inclusive max-scan.
    pub fn rebuild_leaf_max(&mut self, dev: &Device) {
        let seg_len = self.geom.seg_len;
        let num_segs = self.geom.num_segs;
        let keys = &self.keys;
        let local = DeviceBuffer::<u64>::new(num_segs);
        dev.launch("leaf_local_max", num_segs, |lane| {
            let l = lane.tid;
            let mut max = 0u64;
            for i in l * seg_len..(l + 1) * seg_len {
                let k = keys.get(lane, i);
                if k != EMPTY {
                    max = max.max(k);
                }
            }
            local.set(lane, l, max);
        });
        inclusive_max_scan(dev, &local, &self.leaf_max_prefix);
    }

    /// Device-side binary search: index of the leaf where `key` belongs
    /// (first leaf whose prefix max is `>= key`, else the last leaf).
    #[inline]
    pub fn find_leaf(&self, lane: &mut Lane, key: u64) -> usize {
        let n = self.geom.num_segs;
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.leaf_max_prefix.get(lane, mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.min(n - 1)
    }

    /// Slot index of the first live entry with key `>= key`; monotone in
    /// `key` even with mid-leaf holes from lazy deletions.
    pub fn lower_bound_slot(&self, lane: &mut Lane, key: u64) -> usize {
        let leaf = self.find_leaf(lane, key);
        let seg_len = self.geom.seg_len;
        for i in leaf * seg_len..(leaf + 1) * seg_len {
            let k = self.keys.get(lane, i);
            if k != EMPTY && k >= key {
                return i;
            }
        }
        (leaf + 1) * seg_len
    }

    /// Exact slot of `key`, if present.
    pub fn find_slot(&self, lane: &mut Lane, key: u64) -> Option<usize> {
        let leaf = self.find_leaf(lane, key);
        let seg_len = self.geom.seg_len;
        for i in leaf * seg_len..(leaf + 1) * seg_len {
            let k = self.keys.get(lane, i);
            if k == key {
                return Some(i);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Window machinery (shared by GPMA, GPMA+ and the rebuild baseline)
    // ------------------------------------------------------------------

    /// Count live entries in a slot window (serial per caller lane — the
    /// `CountSegment` of Algorithm 4).
    pub fn count_window(&self, lane: &mut Lane, window: std::ops::Range<usize>) -> usize {
        let mut count = 0usize;
        for i in window {
            if self.keys.get(lane, i) != EMPTY {
                count += 1;
            }
        }
        count
    }

    /// Evenly redistribute the first `n` entries of `src_keys`/`src_vals`
    /// (sorted) across `window`, left-packing each leaf — the "re-dispatch
    /// entries evenly" step. Fully parallel: one lane per leaf.
    pub fn redispatch_window(
        &self,
        dev: &Device,
        window: std::ops::Range<usize>,
        src_keys: &DeviceBuffer<u64>,
        src_vals: &DeviceBuffer<u64>,
        n: usize,
    ) {
        let seg_len = self.geom.seg_len;
        debug_assert_eq!(window.start % seg_len, 0);
        debug_assert_eq!(window.len() % seg_len, 0);
        assert!(n <= window.len(), "redispatch overflow: {n} > {}", window.len());
        let leaves = window.len() / seg_len;
        let first_leaf = window.start / seg_len;
        let base = n / leaves;
        let extra = n % leaves;
        let keys = &self.keys;
        let vals = &self.vals;
        dev.launch("redispatch", leaves, |lane| {
            let j = lane.tid;
            let take = base + usize::from(j < extra);
            let src_from = j * base + j.min(extra);
            let dst_from = (first_leaf + j) * seg_len;
            for i in 0..seg_len {
                if i < take {
                    let k = src_keys.get(lane, src_from + i);
                    let v = src_vals.get(lane, src_from + i);
                    keys.set(lane, dst_from + i, k);
                    vals.set(lane, dst_from + i, v);
                } else {
                    keys.set(lane, dst_from + i, EMPTY);
                }
            }
        });
    }

    /// Compact the live entries of `window` into fresh contiguous buffers
    /// (parallel flags + scan + scatter). Returns `(keys, vals, count)`.
    pub fn compact_window(
        &self,
        dev: &Device,
        window: std::ops::Range<usize>,
    ) -> (DeviceBuffer<u64>, DeviceBuffer<u64>, usize) {
        let len = window.len();
        let start = window.start;
        let keys = &self.keys;
        let flags = DeviceBuffer::<u32>::new(len);
        dev.launch("window_flags", len, |lane| {
            let occupied = keys.get(lane, start + lane.tid) != EMPTY;
            flags.set(lane, lane.tid, occupied as u32);
        });
        let (positions, count) = primitives::exclusive_scan_u32(dev, &flags);
        let out_keys = DeviceBuffer::<u64>::new(count as usize);
        let out_vals = DeviceBuffer::<u64>::new(count as usize);
        let vals = &self.vals;
        dev.launch("window_compact", len, |lane| {
            let i = lane.tid;
            if flags.get(lane, i) != 0 {
                let p = positions.get(lane, i) as usize;
                let k = keys.get(lane, start + i);
                let v = vals.get(lane, start + i);
                out_keys.set(lane, p, k);
                out_vals.set(lane, p, v);
            }
        });
        (out_keys, out_vals, count as usize)
    }

    /// [`Self::compact_window`] into caller-owned scratch instead of fresh
    /// buffers — the allocation-free variant the GPMA+ device tier reuses
    /// across segments. Returns the live-entry count; the entries live in
    /// `scratch.keys` / `scratch.vals` (over-sized: only the first `count`
    /// slots are meaningful). The kernel sequence matches the allocating
    /// variant exactly, so simulated times are bit-identical to it.
    // lint: hot-path
    pub fn compact_window_into(
        &self,
        dev: &Device,
        window: std::ops::Range<usize>,
        scratch: &mut CompactScratch,
    ) -> usize {
        let len = window.len();
        let start = window.start;
        scratch.ensure(len);
        let CompactScratch {
            flags,
            positions,
            keys: out_keys,
            vals: out_vals,
        } = &*scratch;
        let keys = &self.keys;
        dev.launch("window_flags", len, |lane| {
            let occupied = keys.get(lane, start + lane.tid) != EMPTY;
            flags.set(lane, lane.tid, occupied as u32);
        });
        let count = primitives::exclusive_scan_u32_into(dev, flags, len, positions);
        let vals = &self.vals;
        dev.launch("window_compact", len, |lane| {
            let i = lane.tid;
            if flags.get(lane, i) != 0 {
                let p = positions.get(lane, i) as usize;
                let k = keys.get(lane, start + i);
                let v = vals.get(lane, start + i);
                out_keys.set(lane, p, k);
                out_vals.set(lane, p, v);
            }
        });
        count as usize
    }

    /// Replace the whole array with `entries` (sorted, deduplicated) under a
    /// new geometry — the grow/shrink path ("double the space of the root").
    pub fn resize_to(
        &mut self,
        dev: &Device,
        merged_keys: &DeviceBuffer<u64>,
        merged_vals: &DeviceBuffer<u64>,
        n: usize,
    ) {
        let geom = Self::geometry_for(n);
        self.keys = DeviceBuffer::filled(EMPTY, geom.capacity());
        self.vals = DeviceBuffer::new(geom.capacity());
        self.leaf_max_prefix = DeviceBuffer::new(geom.num_segs);
        self.geom = geom;
        self.redispatch_window(dev, 0..geom.capacity(), merged_keys, merged_vals, n);
        self.len_counter.host_write(0, n as u64);
        self.rebuild_leaf_max(dev);
    }

    // ------------------------------------------------------------------
    // Host-side verification helpers (tests, oracles)
    // ------------------------------------------------------------------

    /// All live entries (including guards) in key order — host readback.
    pub fn host_entries(&self) -> Vec<(u64, u64)> {
        let keys = self.keys.as_slice();
        let vals = self.vals.as_slice();
        keys.iter()
            .zip(vals.iter())
            .filter(|(k, _)| **k != EMPTY)
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Live real edges in key order — host readback.
    pub fn host_edges(&self) -> Vec<Edge> {
        self.host_entries()
            .into_iter()
            .filter(|&(k, _)| Self::is_entry(k))
            .map(|(k, w)| {
                let (s, d) = gpma_graph::decode_key(k);
                Edge::weighted(s, d, w)
            })
            .collect()
    }

    /// Check structural invariants on the host; panics on violation.
    pub fn check_invariants(&self) {
        let keys = self.keys.as_slice();
        // Sorted with gaps, no duplicates.
        let mut prev: Option<u64> = None;
        let mut live = 0usize;
        for &k in keys {
            if k == EMPTY {
                continue;
            }
            live += 1;
            if let Some(p) = prev {
                assert!(p < k, "device keys out of order: {p:#x} !< {k:#x}");
            }
            prev = Some(k);
        }
        assert_eq!(live, self.len(), "len counter out of sync");
        // Every vertex keeps its guard.
        let mut guards = 0usize;
        for &k in keys {
            if k != EMPTY && (k as u32) == GUARD_DST {
                guards += 1;
            }
        }
        assert_eq!(guards, self.num_vertices as usize, "guards lost");
        // Prefix-max index must never understate (overstating is legal after
        // lazy deletions).
        let seg_len = self.geom.seg_len;
        let pm = self.leaf_max_prefix.as_slice();
        let mut running = 0u64;
        for l in 0..self.geom.num_segs {
            let actual = keys[l * seg_len..(l + 1) * seg_len]
                .iter()
                .filter(|&&k| k != EMPTY)
                .max()
                .copied()
                .unwrap_or(0);
            running = running.max(actual);
            assert!(pm[l] >= running, "leaf {l} prefix max understated");
            assert!(l == 0 || pm[l] >= pm[l - 1], "prefix max not monotone");
        }
    }
}

/// Reusable buffer set for [`GpmaStorage::compact_window_into`]: the
/// occupancy mask, its scan, and the compacted output pair (sized to the
/// window length, an upper bound on the live count). Capacities only grow,
/// so a steady-state stream of equally sized windows allocates nothing
/// after the first call.
pub struct CompactScratch {
    flags: DeviceBuffer<u32>,
    positions: DeviceBuffer<u32>,
    /// Compacted live keys, valid for the count returned by the call that
    /// filled this scratch.
    pub keys: DeviceBuffer<u64>,
    /// Compacted live values, index-aligned with [`Self::keys`].
    pub vals: DeviceBuffer<u64>,
}

impl Default for CompactScratch {
    fn default() -> Self {
        CompactScratch {
            flags: DeviceBuffer::new(0),
            positions: DeviceBuffer::new(0),
            keys: DeviceBuffer::new(0),
            vals: DeviceBuffer::new(0),
        }
    }
}

impl CompactScratch {
    fn ensure(&mut self, n: usize) {
        fn grow<T: gpma_sim::DevicePod>(buf: &mut DeviceBuffer<T>, n: usize) {
            if buf.len() < n {
                *buf = DeviceBuffer::new(n);
            }
        }
        grow(&mut self.flags, n);
        grow(&mut self.positions, n);
        grow(&mut self.keys, n);
        grow(&mut self.vals, n);
    }
}

/// Blocked inclusive max-scan over `u64` (primitive used by the leaf index).
pub fn inclusive_max_scan(dev: &Device, input: &DeviceBuffer<u64>, output: &DeviceBuffer<u64>) {
    let n = input.len();
    assert_eq!(n, output.len());
    if n == 0 {
        return;
    }
    const B: usize = primitives::BLOCK;
    if n <= B {
        dev.launch("max_scan_small", 1, |lane| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.max(input.get(lane, i));
                output.set(lane, i, acc);
            }
        });
        return;
    }
    let nb = n.div_ceil(B);
    let block_max = DeviceBuffer::<u64>::new(nb);
    dev.launch("max_scan_blocks", nb, |lane| {
        let b = lane.tid;
        let start = b * B;
        let end = (start + B).min(n);
        let mut acc = 0u64;
        for i in start..end {
            acc = acc.max(input.get(lane, i));
        }
        block_max.set(lane, b, acc);
    });
    let block_prefix = DeviceBuffer::<u64>::new(nb);
    inclusive_max_scan(dev, &block_max, &block_prefix);
    dev.launch("max_scan_add", nb, |lane| {
        let b = lane.tid;
        let start = b * B;
        let end = (start + B).min(n);
        let mut acc = if b > 0 { block_prefix.get(lane, b - 1) } else { 0 };
        for i in start..end {
            acc = acc.max(input.get(lane, i));
            output.set(lane, i, acc);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpma_graph::encode_key;
    use gpma_sim::DeviceConfig;

    fn dev() -> Device {
        Device::new(DeviceConfig::deterministic())
    }

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(s, d)| Edge::new(s, d)).collect()
    }

    #[test]
    fn build_holds_edges_and_guards_sorted() {
        let d = dev();
        let s = GpmaStorage::build(&d, 3, &edges(&[(0, 1), (2, 0), (1, 2), (0, 2)]));
        s.check_invariants();
        assert_eq!(s.len(), 4 + 3);
        assert_eq!(s.num_edges(), 4);
        let got: Vec<(u32, u32)> = s.host_edges().iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(got, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn build_dedups_last_weight_wins() {
        let d = dev();
        let s = GpmaStorage::build(
            &d,
            2,
            &[Edge::weighted(0, 1, 5), Edge::weighted(0, 1, 9)],
        );
        assert_eq!(s.num_edges(), 1);
        assert_eq!(s.host_edges()[0].weight, 9);
    }

    #[test]
    fn find_slot_and_lower_bound() {
        let d = dev();
        let s = GpmaStorage::build(&d, 4, &edges(&[(0, 1), (1, 3), (2, 2)]));
        let mut lane = Lane::test_lane(0);
        assert!(s.find_slot(&mut lane, encode_key(1, 3)).is_some());
        assert!(s.find_slot(&mut lane, encode_key(1, 2)).is_none());
        let lb = s.lower_bound_slot(&mut lane, encode_key(1, 0));
        let k = s.keys.host_read(lb);
        assert!(k >= encode_key(1, 0), "lower bound landed before row 1");
    }

    #[test]
    fn compact_then_redispatch_roundtrips() {
        let d = dev();
        let s = GpmaStorage::build(&d, 8, &edges(&[(0, 1), (1, 2), (3, 4), (5, 6), (7, 0)]));
        let before = s.host_entries();
        let cap = s.capacity();
        let (ck, cv, n) = s.compact_window(&d, 0..cap);
        assert_eq!(n, before.len());
        s.redispatch_window(&d, 0..cap, &ck, &cv, n);
        assert_eq!(s.host_entries(), before);
        s.check_invariants();
    }

    #[test]
    fn compact_window_scratch_matches_allocating_variant() {
        let d = dev();
        let s = GpmaStorage::build(&d, 8, &edges(&[(0, 1), (1, 2), (3, 4), (5, 6), (7, 0)]));
        let cap = s.capacity();
        let mut scratch = CompactScratch::default();
        // Shrinking windows across calls: the reused buffers keep stale
        // tails that the bounded `n` must mask out.
        for window in [0..cap, 0..cap / 2, cap / 2..cap] {
            let (ck, cv, n) = s.compact_window(&d, window.clone());
            let n2 = s.compact_window_into(&d, window, &mut scratch);
            assert_eq!(n2, n);
            assert_eq!(&scratch.keys.to_vec()[..n], ck.to_vec());
            assert_eq!(&scratch.vals.to_vec()[..n], cv.to_vec());
        }
        // Sim cost parity: identical kernel sequence, so two fresh devices
        // running the same compaction end at the same simulated clock.
        let d1 = dev();
        let s1 = GpmaStorage::build(&d1, 8, &edges(&[(0, 1), (1, 2), (3, 4)]));
        let cap1 = s1.capacity();
        let _ = s1.compact_window(&d1, 0..cap1);
        let d2 = dev();
        let s2 = GpmaStorage::build(&d2, 8, &edges(&[(0, 1), (1, 2), (3, 4)]));
        let mut sc2 = CompactScratch::default();
        let _ = s2.compact_window_into(&d2, 0..cap1, &mut sc2);
        assert_eq!(d1.elapsed().secs().to_bits(), d2.elapsed().secs().to_bits());
    }

    #[test]
    fn resize_preserves_entries() {
        let d = dev();
        let mut s = GpmaStorage::build(&d, 4, &edges(&[(0, 1), (1, 2), (2, 3)]));
        let before = s.host_entries();
        let cap = s.capacity();
        let (ck, cv, n) = s.compact_window(&d, 0..cap);
        s.resize_to(&d, &ck, &cv, n);
        assert_eq!(s.host_entries(), before);
        s.check_invariants();
    }

    #[test]
    fn max_scan_matches_reference() {
        let d = dev();
        for n in [1usize, 7, 256, 257, 5000] {
            let data: Vec<u64> = (0..n).map(|i| ((i * 37) % 101) as u64).collect();
            let input = DeviceBuffer::from_slice(&data);
            let output = DeviceBuffer::new(n);
            inclusive_max_scan(&d, &input, &output);
            let mut acc = 0u64;
            let expect: Vec<u64> = data
                .iter()
                .map(|&v| {
                    acc = acc.max(v);
                    acc
                })
                .collect();
            assert_eq!(output.to_vec(), expect, "n={n}");
        }
    }

    #[test]
    fn count_window_counts_live_slots() {
        let d = dev();
        let s = GpmaStorage::build(&d, 2, &edges(&[(0, 1), (1, 0)]));
        let mut lane = Lane::test_lane(0);
        let total = s.count_window(&mut lane, 0..s.capacity());
        assert_eq!(total, s.len());
    }

    #[test]
    #[should_panic(expected = "guard sentinel")]
    fn guard_dst_rejected_in_edges() {
        let d = dev();
        GpmaStorage::build(&d, 2, &[Edge::new(0, GUARD_DST)]);
    }

    #[test]
    fn is_entry_predicate() {
        assert!(GpmaStorage::is_entry(encode_key(1, 2)));
        assert!(!GpmaStorage::is_entry(EMPTY));
        assert!(!GpmaStorage::is_entry(guard_key(5)));
    }
}

//! Property-based tests of the device structures: GPMA and GPMA+ must match
//! a sorted-map oracle under arbitrary batch sequences, preserve their
//! structural invariants, and agree with each other.

use gpma_core::{Gpma, GpmaPlus};
use gpma_graph::{Edge, UpdateBatch};
use gpma_sim::{Device, DeviceConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

const NV: u32 = 24;

#[derive(Debug, Clone)]
struct Op {
    src: u32,
    dst: u32,
    weight: u64,
    delete: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..NV, 0..NV - 1, 1u64..100, any::<bool>()).prop_map(|(s, t, w, delete)| Op {
        src: s,
        dst: if t == s { NV - 1 } else { t },
        weight: w,
        delete,
    })
}

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 1..40), 1..8)
}

fn to_batch(ops: &[Op]) -> UpdateBatch {
    let mut b = UpdateBatch::default();
    for op in ops {
        if op.delete {
            b.deletions.push(Edge::new(op.src, op.dst));
        } else {
            b.insertions.push(Edge::weighted(op.src, op.dst, op.weight));
        }
    }
    b
}

fn apply_oracle(oracle: &mut BTreeMap<(u32, u32), u64>, b: &UpdateBatch) {
    for e in &b.deletions {
        oracle.remove(&(e.src, e.dst));
    }
    for e in &b.insertions {
        oracle.insert((e.src, e.dst), e.weight);
    }
}

fn edges_of_plus(g: &GpmaPlus) -> BTreeMap<(u32, u32), u64> {
    g.storage
        .host_edges()
        .into_iter()
        .map(|e| ((e.src, e.dst), e.weight))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpma_plus_matches_oracle(batches in batches_strategy()) {
        let dev = Device::new(DeviceConfig::deterministic());
        let mut g = GpmaPlus::build(&dev, NV, &[]);
        let mut oracle = BTreeMap::new();
        for ops in &batches {
            let b = to_batch(ops);
            g.update_batch(&dev, &b);
            apply_oracle(&mut oracle, &b);
            g.storage.check_invariants();
            prop_assert_eq!(edges_of_plus(&g), oracle.clone());
        }
    }

    #[test]
    fn gpma_lock_based_matches_oracle(batches in batches_strategy()) {
        let dev = Device::new(DeviceConfig::deterministic());
        let mut g = Gpma::build(&dev, NV, &[]);
        let mut oracle: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for ops in &batches {
            let b = to_batch(ops);
            g.update_batch(&dev, &b);
            apply_oracle(&mut oracle, &b);
            g.storage.check_invariants();
            let got: BTreeMap<(u32, u32), u64> = g
                .storage
                .host_edges()
                .into_iter()
                .map(|e| ((e.src, e.dst), e.weight))
                .collect();
            prop_assert_eq!(got, oracle.clone());
        }
    }

    #[test]
    fn lazy_and_merge_deletion_paths_agree(batches in batches_strategy()) {
        let dev_a = Device::new(DeviceConfig::deterministic());
        let dev_b = Device::new(DeviceConfig::deterministic());
        let mut lazy = GpmaPlus::build(&dev_a, NV, &[]);
        let mut full = GpmaPlus::build(&dev_b, NV, &[]);
        for ops in &batches {
            let b = to_batch(ops);
            lazy.update_batch_lazy(&dev_a, &b);
            full.update_batch(&dev_b, &b);
            lazy.storage.check_invariants();
            prop_assert_eq!(edges_of_plus(&lazy), edges_of_plus(&full));
        }
    }

    #[test]
    fn csr_view_always_matches_reference(batches in batches_strategy()) {
        let dev = Device::new(DeviceConfig::deterministic());
        let mut g = GpmaPlus::build(&dev, NV, &[]);
        for ops in &batches {
            g.update_batch_lazy(&dev, &to_batch(ops));
            let view = gpma_core::CsrView::build(&dev, &g.storage);
            let got = view.to_host_csr(&g.storage);
            got.validate().unwrap();
            let expect = gpma_graph::Coo::new(NV, g.storage.host_edges()).to_csr();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn guards_and_len_survive_arbitrary_churn(batches in batches_strategy()) {
        let dev = Device::new(DeviceConfig::deterministic());
        let mut g = GpmaPlus::build(&dev, NV, &[]);
        for ops in &batches {
            g.update_batch(&dev, &to_batch(ops));
        }
        // len = edges + one immortal guard per vertex.
        prop_assert_eq!(g.storage.len(), g.storage.num_edges() + NV as usize);
    }
}

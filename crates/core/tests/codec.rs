//! Property-based round-trip tests of the durability codec: every value the
//! checkpoint layer can persist must decode back to an identical value, the
//! decoder must consume its buffer exactly, and a restored checkpoint must
//! equal the snapshot the delta chain builds by replay.

use gpma_core::checkpoint::Checkpoint;
use gpma_core::codec::{decode_delta, decode_snapshot, encode_delta, encode_snapshot, ByteReader};
use gpma_core::delta::{apply_delta, SnapshotDelta};
use gpma_core::framework::GraphSnapshot;
use gpma_graph::{Edge, UpdateBatch};
use proptest::prelude::*;
use std::sync::Arc;

const NV: u32 = 24;

#[derive(Debug, Clone)]
struct Op {
    src: u32,
    dst: u32,
    weight: u64,
    delete: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..NV, 0..NV - 1, 1u64..100, any::<bool>()).prop_map(|(s, t, w, delete)| Op {
        src: s,
        dst: if t == s { NV - 1 } else { t },
        weight: w,
        delete,
    })
}

fn to_batch(ops: &[Op]) -> UpdateBatch {
    let mut b = UpdateBatch::default();
    for op in ops {
        if op.delete {
            b.deletions.push(Edge::new(op.src, op.dst));
        } else {
            b.insertions.push(Edge::weighted(op.src, op.dst, op.weight));
        }
    }
    b
}

fn snapshot_of(epoch: u64, ops: &[Op]) -> GraphSnapshot {
    let edges: Vec<Edge> = ops
        .iter()
        .filter(|op| !op.delete)
        .map(|op| Edge::weighted(op.src, op.dst, op.weight))
        .collect();
    GraphSnapshot::from_edges(epoch, NV, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_wire_roundtrip_is_identity(
        ops in prop::collection::vec(op_strategy(), 0..60),
        epoch in 0u64..1_000,
    ) {
        let snap = snapshot_of(epoch, &ops);
        let mut buf = Vec::new();
        encode_snapshot(&snap, &mut buf);

        let mut r = ByteReader::new(&buf);
        let back = decode_snapshot(&mut r).expect("well-formed snapshot bytes");
        prop_assert!(r.is_empty(), "decoder must consume the buffer exactly");
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn delta_wire_roundtrip_is_identity(
        ops in prop::collection::vec(op_strategy(), 0..60),
        epoch in 0u64..1_000,
    ) {
        let delta = SnapshotDelta::from_batch(epoch, &to_batch(&ops));
        let mut buf = Vec::new();
        encode_delta(&delta, &mut buf);

        let mut r = ByteReader::new(&buf);
        let back = decode_delta(&mut r).expect("well-formed delta bytes");
        prop_assert!(r.is_empty(), "decoder must consume the buffer exactly");
        prop_assert_eq!(back, delta);
    }

    #[test]
    fn checkpoint_container_roundtrip_is_identity(
        base in prop::collection::vec(op_strategy(), 0..40),
        chain_ops in prop::collection::vec(prop::collection::vec(op_strategy(), 0..20), 0..6),
        base_epoch in 0u64..100,
    ) {
        let snap = snapshot_of(base_epoch, &base);
        let deltas: Vec<Arc<SnapshotDelta>> = chain_ops
            .iter()
            .enumerate()
            .map(|(i, ops)| {
                Arc::new(SnapshotDelta::from_batch(
                    base_epoch + 1 + i as u64,
                    &to_batch(ops),
                ))
            })
            .collect();
        let ckpt = Checkpoint::new(snap, deltas);

        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("well-formed checkpoint bytes");
        prop_assert_eq!(&back, &ckpt);

        // restore() through the wire equals replaying the chain in memory.
        let mut replayed = ckpt.snapshot().clone();
        for d in ckpt.deltas() {
            replayed = apply_delta(&replayed, d);
        }
        prop_assert_eq!(back.restore(), replayed);
    }

    #[test]
    fn any_single_byte_corruption_of_a_checkpoint_is_rejected_or_detected(
        base in prop::collection::vec(op_strategy(), 1..30),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let ckpt = Checkpoint::new(snapshot_of(3, &base), Vec::new());
        let mut bytes = ckpt.encode();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= flip;

        // A flipped byte must never decode silently: either the structural
        // validation or the trailing checksum catches it.
        prop_assert!(Checkpoint::decode(&bytes).is_err());
    }
}

//! Corrupt-and-reject coverage for the `audit` feature's deep validators:
//! each test damages one structure in one precise way and asserts the
//! validator reports that specific failure, plus a property test that audits
//! a random insert/delete stream after every epoch.
//!
//! Run with `cargo test --features audit -p gpma-core` (CI does).
#![cfg(feature = "audit")]

use std::sync::Arc;

use gpma_core::audit::AuditError;
use gpma_core::delta::{DeltaLog, SnapshotDelta};
use gpma_core::migration::MigrationPlan;
use gpma_core::multi::{PartitionEpoch, Partitioner, VertexPartition};
use gpma_core::storage::EMPTY;
use gpma_core::GpmaPlus;
use gpma_graph::{Edge, UpdateBatch};
use gpma_sim::{Device, DeviceConfig};
use proptest::prelude::*;

fn build_plus(nv: u32, edges: &[Edge]) -> (Device, GpmaPlus) {
    let dev = Device::new(DeviceConfig::deterministic());
    let g = GpmaPlus::build(&dev, nv, edges);
    (dev, g)
}

fn star_edges(n: u32) -> Vec<Edge> {
    (1..n).map(|d| Edge::weighted(0, d, u64::from(d))).collect()
}

// ---------------------------------------------------------------- storage

#[test]
fn intact_gpma_plus_validates() {
    let (dev, mut g) = build_plus(16, &star_edges(12));
    g.validate().expect("fresh build");
    g.update_batch(
        &dev,
        &UpdateBatch {
            insertions: vec![Edge::new(3, 4), Edge::new(5, 6)],
            deletions: vec![Edge::new(0, 1)],
        },
    );
    g.validate().expect("after an update batch");
}

#[test]
fn reordered_keys_are_rejected() {
    let (_dev, mut g) = build_plus(16, &star_edges(12));
    let keys = g.storage.keys.as_mut_slice();
    // Swap the first two distinct live keys.
    let live: Vec<usize> = (0..keys.len()).filter(|&i| keys[i] != EMPTY).collect();
    keys.swap(live[0], live[1]);
    match g.validate() {
        Err(AuditError::Storage(m)) => assert!(m.contains("out of order"), "{m}"),
        other => panic!("expected out-of-order rejection, got {other:?}"),
    }
}

#[test]
fn desynced_len_counter_is_rejected() {
    let (_dev, mut g) = build_plus(16, &star_edges(12));
    let keys = g.storage.keys.as_mut_slice();
    // Blank one live non-guard slot without telling the counter.
    let victim = (0..keys.len())
        .find(|&i| keys[i] != EMPTY && (keys[i] as u32) != u32::MAX)
        .expect("a live edge slot");
    keys[victim] = EMPTY;
    match g.validate() {
        Err(AuditError::Storage(m)) => assert!(m.contains("len counter"), "{m}"),
        other => panic!("expected len-counter rejection, got {other:?}"),
    }
}

#[test]
fn lost_guard_is_rejected() {
    // Only vertex 0 has edges, so vertex 2's row holds nothing but its
    // guard: decrementing that key keeps the array sorted and the live
    // count intact while erasing the guard itself.
    let (_dev, mut g) = build_plus(4, &star_edges(4));
    let guard_key = (2u64 << 32) | u64::from(u32::MAX);
    let keys = g.storage.keys.as_mut_slice();
    let slot = (0..keys.len())
        .find(|&i| keys[i] == guard_key)
        .expect("guard of vertex 2");
    keys[slot] = guard_key - 1;
    match g.validate() {
        Err(AuditError::Storage(m)) => assert!(m.contains("guards lost"), "{m}"),
        other => panic!("expected guards-lost rejection, got {other:?}"),
    }
}

#[test]
fn understated_prefix_max_is_rejected() {
    let (_dev, mut g) = build_plus(16, &star_edges(12));
    let last = g.storage.leaf_max_prefix.len() - 1;
    g.storage.leaf_max_prefix.host_write(last, 0);
    match g.validate() {
        Err(AuditError::Storage(m)) => assert!(m.contains("prefix max"), "{m}"),
        other => panic!("expected prefix-max rejection, got {other:?}"),
    }
}

// --------------------------------------------------------------- delta log

fn delta(epoch: u64, inserts: &[(u32, u32)]) -> Arc<SnapshotDelta> {
    Arc::new(SnapshotDelta::from_batch(
        epoch,
        &UpdateBatch {
            insertions: inserts.iter().map(|&(s, d)| Edge::new(s, d)).collect(),
            deletions: vec![],
        },
    ))
}

#[test]
fn contiguous_delta_chain_validates() {
    let mut log = DeltaLog::new(8);
    log.push(delta(1, &[(0, 1), (1, 2)]));
    log.push(delta(2, &[(2, 3)]));
    log.push(delta(3, &[(3, 4), (0, 2)]));
    log.validate().expect("contiguous normalized chain");
}

#[test]
fn delta_below_rebase_floor_is_rejected() {
    let mut log = DeltaLog::new(8);
    // A reshard declares epoch 10 the rebase point; publishing epoch 5
    // afterwards hands readers a chain that predates their floor.
    log.reset_to(10);
    log.push(delta(5, &[(0, 1)]));
    match log.validate() {
        Err(AuditError::DeltaLog(m)) => assert!(m.contains("rebase floor"), "{m}"),
        other => panic!("expected rebase-floor rejection, got {other:?}"),
    }
}

// --------------------------------------------------------------- partition

/// A plan that homes every vertex on a shard that does not exist.
struct HomelessPlan;

impl Partitioner for HomelessPlan {
    fn name(&self) -> &str {
        "homeless"
    }
    fn num_shards(&self) -> usize {
        2
    }
    fn num_vertices(&self) -> u32 {
        8
    }
    fn shard_of_edge(&self, _src: u32, _dst: u32) -> usize {
        0
    }
    fn home_of_vertex(&self, _v: u32) -> usize {
        2 // == num_shards: out of range
    }
    fn stores_row(&self, shard: usize, _v: u32) -> bool {
        shard == 0
    }
}

/// A plan whose row sets do not cover the vertices it claims to place.
struct RowlessPlan;

impl Partitioner for RowlessPlan {
    fn name(&self) -> &str {
        "rowless"
    }
    fn num_shards(&self) -> usize {
        2
    }
    fn num_vertices(&self) -> u32 {
        8
    }
    fn shard_of_edge(&self, _src: u32, _dst: u32) -> usize {
        0
    }
    fn home_of_vertex(&self, _v: u32) -> usize {
        0
    }
    fn stores_row(&self, _shard: usize, _v: u32) -> bool {
        false
    }
}

#[test]
fn out_of_range_home_is_rejected() {
    let epoch = PartitionEpoch::new(Arc::new(HomelessPlan));
    match epoch.validate() {
        Err(AuditError::Partition(m)) => assert!(m.contains("out of range"), "{m}"),
        other => panic!("expected out-of-range rejection, got {other:?}"),
    }
}

#[test]
fn empty_row_set_is_rejected() {
    let epoch = PartitionEpoch::new(Arc::new(RowlessPlan));
    match epoch.validate() {
        Err(AuditError::Partition(m)) => assert!(m.contains("row-shard set"), "{m}"),
        other => panic!("expected empty-row-set rejection, got {other:?}"),
    }
}

// --------------------------------------------------------------- migration

fn split_by<P: Partitioner>(edges: &[Edge], plan: &P) -> Vec<Vec<Edge>> {
    let mut per_shard = vec![Vec::new(); plan.num_shards()];
    for e in edges {
        per_shard[plan.shard_of_edge(e.src, e.dst)].push(*e);
    }
    per_shard
}

#[test]
fn migration_plan_validates_against_its_inputs() {
    let old = VertexPartition {
        num_vertices: 32,
        num_shards: 2,
    };
    let new = VertexPartition {
        num_vertices: 32,
        num_shards: 4,
    };
    let edges: Vec<Edge> = (0..32u32).map(|v| Edge::new(v, (v + 7) % 32)).collect();
    let per_shard = split_by(&edges, &old);
    let plan = MigrationPlan::compute(&per_shard, &new);
    plan.validate(&per_shard, &new).expect("plan matches its inputs");
}

#[test]
fn migration_plan_against_wrong_partitioner_is_rejected() {
    let old = VertexPartition {
        num_vertices: 32,
        num_shards: 2,
    };
    let new = VertexPartition {
        num_vertices: 32,
        num_shards: 4,
    };
    let edges: Vec<Edge> = (0..32u32).map(|v| Edge::new(v, (v + 7) % 32)).collect();
    let per_shard = split_by(&edges, &old);
    let plan = MigrationPlan::compute(&per_shard, &new);
    // Validating against a different target plan must expose the mismatch.
    let wrong = VertexPartition {
        num_vertices: 32,
        num_shards: 3,
    };
    plan.validate(&per_shard, &wrong)
        .expect_err("owner-diff computed for 4 shards cannot match 3");
}

#[test]
fn tampered_move_inputs_are_rejected() {
    let old = VertexPartition {
        num_vertices: 32,
        num_shards: 2,
    };
    let new = VertexPartition {
        num_vertices: 32,
        num_shards: 4,
    };
    let edges: Vec<Edge> = (0..32u32).map(|v| Edge::new(v, (v + 7) % 32)).collect();
    let mut per_shard = split_by(&edges, &old);
    let plan = MigrationPlan::compute(&per_shard, &new);
    // An edge that appeared on shard 0 after the plan was computed.
    per_shard[0].push(Edge::new(31, 0));
    match plan.validate(&per_shard, &new) {
        Err(AuditError::Migration(_)) => {}
        other => panic!("expected migration rejection, got {other:?}"),
    }
}

// ---------------------------------------------------------------- proptest

const NV: u32 = 24;

#[derive(Debug, Clone)]
struct Op {
    src: u32,
    dst: u32,
    weight: u64,
    delete: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..NV, 0..NV - 1, 1u64..100, any::<bool>()).prop_map(|(s, t, w, delete)| Op {
        src: s,
        dst: if t == s { NV - 1 } else { t },
        weight: w,
        delete,
    })
}

fn to_batch(ops: &[Op]) -> UpdateBatch {
    let mut b = UpdateBatch::default();
    for op in ops {
        if op.delete {
            b.deletions.push(Edge::new(op.src, op.dst));
        } else {
            b.insertions.push(Edge::weighted(op.src, op.dst, op.weight));
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every epoch of a random insert/delete stream leaves both the PMA
    /// state and the delta ring audit-clean, on the lazy and eager paths.
    #[test]
    fn random_stream_stays_audit_clean(
        batches in prop::collection::vec(prop::collection::vec(op_strategy(), 1..40), 1..7),
        lazy in any::<bool>(),
    ) {
        let dev = Device::new(DeviceConfig::deterministic());
        let mut g = GpmaPlus::build(&dev, NV, &[]);
        let mut log = DeltaLog::new(4);
        for (i, ops) in batches.iter().enumerate() {
            let b = to_batch(ops);
            if lazy {
                g.update_batch_lazy(&dev, &b);
            } else {
                g.update_batch(&dev, &b);
            }
            log.push(Arc::new(SnapshotDelta::from_batch(i as u64 + 1, &b)));
            let storage_audit = g.validate();
            prop_assert!(storage_audit.is_ok(), "epoch {}: {:?}", i + 1, storage_audit);
            let log_audit = log.validate();
            prop_assert!(log_audit.is_ok(), "epoch {}: {:?}", i + 1, log_audit);
        }
    }
}

//! Microbenchmarks of the device primitives GPMA+ is built from (radix
//! sort, scan, RLE — §5.2's CUB substitutes) and of the CPU PMA, all in
//! their native metrics.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpma_pma::Pma;
use gpma_sim::{primitives, Device, DeviceBuffer, DeviceConfig};
use std::time::Duration;

fn primitives_bench(c: &mut Criterion) {
    let dev = Device::new(DeviceConfig::default());
    let mut group = c.benchmark_group("micro_primitives");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for &n in &[1usize << 12, 1 << 16] {
        let keys: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        group.bench_with_input(BenchmarkId::new("radix_sort_u64", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for k in 0..iters {
                    let mut buf = DeviceBuffer::from_slice(&keys);
                    let (_, t) = dev.timed(|d| primitives::radix_sort_u64(d, &mut buf));
                    total += Duration::from_secs_f64(t.secs().max(1e-12)) + common::jitter(k as usize);
                }
                total
            })
        });
        let ones = vec![1u32; n];
        group.bench_with_input(BenchmarkId::new("exclusive_scan_u32", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for k in 0..iters {
                    let buf = DeviceBuffer::from_slice(&ones);
                    let (_, t) = dev.timed(|d| {
                        let _ = primitives::exclusive_scan_u32(d, &buf);
                    });
                    total += Duration::from_secs_f64(t.secs().max(1e-12)) + common::jitter(k as usize);
                }
                total
            })
        });
        let runs: Vec<u32> = (0..n).map(|i| (i / 7) as u32).collect();
        group.bench_with_input(BenchmarkId::new("run_length_encode", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for k in 0..iters {
                    let buf = DeviceBuffer::from_slice(&runs);
                    let (_, t) = dev.timed(|d| {
                        let _ = primitives::run_length_encode_u32(d, &buf);
                    });
                    total += Duration::from_secs_f64(t.secs().max(1e-12)) + common::jitter(k as usize);
                }
                total
            })
        });
    }
    group.finish();
}

fn pma_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_pma_cpu");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for &n in &[10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("random_inserts", n), &n, |b, &n| {
            b.iter(|| {
                let mut pma: Pma<u64> = Pma::new();
                for k in 0..n {
                    pma.insert(k.wrapping_mul(0x9E3779B97F4A7C15) >> 8, k);
                }
                pma.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, primitives_bench, pma_bench);
criterion_main!(benches);

//! Streaming-service bench: end-to-end ingest throughput of the concurrent
//! facade (`gpma-service`) as the producer count grows. Unlike the figure
//! benches this measures host wall-clock — the service's queueing, flush
//! cadence and snapshot publication are real host work; only the GPMA+
//! batch applies inside each flush run on the simulated device.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpma_core::framework::DynamicGraphSystem;
use gpma_graph::datasets::DatasetKind;
use gpma_graph::Edge;
use gpma_service::{ServiceConfig, StreamingService};
use gpma_sim::{Device, DeviceConfig};
use std::time::{Duration, Instant};

/// Live edges streamed per measured iteration (bounded so `cargo bench`
/// stays fast; the flush threshold still gets dozens of device steps).
const EDGES_PER_ITER: usize = 2000;

fn service_throughput(c: &mut Criterion) {
    let stream = bench_stream(DatasetKind::RedditLike);
    let batch = stream.slide_batch_size(0.01).max(1);
    let tail: Vec<Edge> = stream.edges[stream.initial_size()..]
        .iter()
        .take(EDGES_PER_ITER)
        .copied()
        .collect();

    let mut group = c.benchmark_group("service_throughput_reddit");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1500));
    for &producers in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("producers", producers),
            &producers,
            |b, &producers| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let dev = Device::new(DeviceConfig::default());
                        let sys = DynamicGraphSystem::new(
                            dev,
                            stream.num_vertices,
                            stream.initial_edges(),
                            batch,
                        );
                        let svc = StreamingService::spawn(ServiceConfig::default(), sys);
                        let t0 = Instant::now();
                        gpma_bench::feed_concurrently(&svc, &tail, producers);
                        total += t0.elapsed();
                        drop(svc);
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);

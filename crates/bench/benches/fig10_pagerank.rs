//! Figure 10 bench: streaming PageRank — per-slide update + analytics time for
//! each approach on the UniformRandom dataset at a 0.1% slide.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpma_bench::apps::{run_app, App};
use gpma_bench::ApproachKind;
use gpma_graph::datasets::DatasetKind;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let stream = bench_stream(DatasetKind::UniformRandom);
    let batch = stream.slide_batch_size(0.001);
    let batches = cycle_batches(&stream, batch, 8);
    let mut group = c.benchmark_group("fig10_pagerank");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for kind in ApproachKind::ALL {
        let mut store = build_store(kind, &stream);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new(kind.name(), batch), &batch, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += apply_timed(&mut store, &batches[i % batches.len()]);
                    let run = run_app(App::PageRank, &store, (i as u32) % stream.num_vertices);
                    total += Duration::from_secs_f64(run.seconds.max(1e-12));
                    i += 1;
                    total += jitter(i);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Shared helpers for the Criterion benches (included via `mod` from each
//! bench target; `cargo bench` compiles each bench as its own crate).
#![allow(dead_code)]

use gpma_bench::{ApproachKind, Store};
use gpma_graph::datasets::{generate, DatasetKind};
use gpma_graph::{GraphStream, UpdateBatch};
use gpma_sim::DeviceConfig;
use std::time::Duration;

/// Bench-sized dataset (small so `cargo bench` stays minutes, not hours).
pub const BENCH_SCALE: f64 = 0.0005;
pub const BENCH_SEED: u64 = 42;

pub fn bench_stream(kind: DatasetKind) -> GraphStream {
    generate(kind, BENCH_SCALE, BENCH_SEED)
}

/// Pre-collected slide batches that can be cycled indefinitely (re-applying
/// a past slide is a valid workload: deletes of absent edges are no-ops and
/// duplicate inserts are modifications).
pub fn cycle_batches(stream: &GraphStream, batch: usize, n: usize) -> Vec<UpdateBatch> {
    stream.sliding(batch).take(n.max(1)).collect()
}

pub fn build_store(kind: ApproachKind, stream: &GraphStream) -> Store {
    Store::build_with(
        kind,
        stream.num_vertices,
        stream.initial_edges(),
        DeviceConfig::default(),
    )
}

/// One update application, returned as a Duration in the store's native
/// metric (simulated for device stores) for `iter_custom`.
pub fn apply_timed(store: &mut Store, batch: &UpdateBatch) -> Duration {
    Duration::from_secs_f64(store.apply(batch).max(1e-12))
}

/// Criterion's statistics panic on zero-variance samples, and the simulated
/// device clock is perfectly deterministic. Blend in sub-microsecond
/// deterministic jitter (< 0.1% of any real measurement) to keep the
/// estimator happy without distorting results.
pub fn jitter(i: usize) -> Duration {
    Duration::from_nanos((i as u64).wrapping_mul(2654435761) % 997 + 1)
}

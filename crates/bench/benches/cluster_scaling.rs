//! Cluster shard-scaling bench: end-to-end wall-clock of streaming one
//! fixed edge tail through a `gpma-cluster` with a growing shard count,
//! under both partitioning policies. Like the service bench this measures
//! host wall-clock (routing, queueing, flush cadence and the coordinated
//! epoch cut are real host work); the GPMA+ applies inside each shard run
//! on that shard's simulated device.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpma_cluster::{ClusterConfig, GraphCluster, PartitionPolicy};
use gpma_graph::datasets::DatasetKind;
use gpma_graph::Edge;
use gpma_sim::DeviceConfig;
use std::time::{Duration, Instant};

/// Live edges streamed per measured iteration.
const EDGES_PER_ITER: usize = 2000;
const PRODUCERS: usize = 4;

fn cluster_scaling(c: &mut Criterion) {
    let stream = bench_stream(DatasetKind::Graph500);
    let batch = stream.slide_batch_size(0.01).max(1);
    let tail: Vec<Edge> = stream.edges[stream.initial_size()..]
        .iter()
        .take(EDGES_PER_ITER)
        .copied()
        .collect();

    let mut group = c.benchmark_group("cluster_scaling_graph500");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1500));
    for policy in [PartitionPolicy::VertexHash, PartitionPolicy::EdgeGrid] {
        for &shards in &[1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(policy.name(), shards),
                &shards,
                |b, &shards| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let cluster = GraphCluster::spawn(
                                ClusterConfig {
                                    flush_threshold: batch,
                                    ..Default::default()
                                },
                                &DeviceConfig::default(),
                                policy.build(stream.num_vertices, shards),
                                stream.initial_edges(),
                            );
                            let t0 = Instant::now();
                            gpma_bench::feed_cluster_concurrently(&cluster, &tail, PRODUCERS);
                            total += t0.elapsed();
                            drop(cluster);
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, cluster_scaling);
criterion_main!(benches);

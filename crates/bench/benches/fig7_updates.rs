//! Figure 7 bench: update latency per slide vs batch size, all approaches.
//! Device approaches report *simulated* device time via `iter_custom`.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpma_bench::ApproachKind;
use gpma_graph::datasets::DatasetKind;
use std::time::Duration;

fn fig7(c: &mut Criterion) {
    let stream = bench_stream(DatasetKind::Graph500);
    let mut group = c.benchmark_group("fig7_updates_graph500");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for &batch in &[64usize, 1024, 8192] {
        let batches = cycle_batches(&stream, batch, 8);
        for kind in ApproachKind::ALL {
            // The lock-based GPMA at large clustered batches is the known
            // pathological case; keep bench time bounded.
            if kind == ApproachKind::Gpma && batch > 1024 {
                continue;
            }
            let mut store = build_store(kind, &stream);
            let mut i = 0usize;
            group.bench_with_input(
                BenchmarkId::new(kind.name(), batch),
                &batch,
                |b, _| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            total += apply_timed(&mut store, &batches[i % batches.len()]);
                            i += 1;
                            total += jitter(i);
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);

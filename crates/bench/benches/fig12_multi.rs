//! Figure 12 bench: multi-device update + PageRank throughput on Graph500,
//! 1–3 simulated GPUs, reported in simulated time via `iter_custom`.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpma_core::multi::MultiGpma;
use gpma_graph::datasets::DatasetKind;
use gpma_sim::DeviceConfig;
use std::time::Duration;

fn fig12(c: &mut Criterion) {
    let stream = bench_stream(DatasetKind::Graph500);
    let batch = stream.slide_batch_size(0.01);
    let batches = cycle_batches(&stream, batch, 8);
    let mut group = c.benchmark_group("fig12_multi_gpu");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for devices in 1..=3usize {
        let mut m = MultiGpma::build(
            &DeviceConfig::default(),
            devices,
            stream.num_vertices,
            stream.initial_edges(),
        );
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("update", devices), &devices, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let t = m.update_batch(&batches[i % batches.len()]);
                    total += Duration::from_secs_f64(t.total().secs().max(1e-12));
                    i += 1;
                    total += jitter(i);
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("pagerank", devices), &devices, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for k in 0..iters {
                    let (_, t) = gpma_analytics::multi::pagerank_multi(&mut m, 0.85, 1e-3, 30);
                    total += Duration::from_secs_f64(t.total().secs().max(1e-12));
                    total += jitter(k as usize);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);

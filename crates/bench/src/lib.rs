//! # gpma-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's Section 6 through the
//! `repro` binary (`cargo run -p gpma-bench --release --bin repro -- all`)
//! and exposes the uniform approach/application wrappers the Criterion
//! benches build on.
//!
//! Experiment index (DESIGN.md §5): `table1`, `table2`, `fig7` (updates vs
//! batch size), `fig8`/`fig9`/`fig10` (streaming BFS / CC / PageRank),
//! `fig11` (PCIe overlap), `fig12` (multi-GPU), `sorted`, `explicit`,
//! `ablation`, `service` (the concurrent streaming facade), `cluster`
//! (sharded scaling), `incremental` (delta-fed analytics), `elastic`
//! (live resharding + skew-driven rebalance), `recovery` (durable
//! checkpoints, shard failover, follower replicas).
//!
//! ## Quick example
//!
//! Every compared approach hides behind the uniform [`Store`] wrapper:
//!
//! ```
//! use gpma_bench::{ApproachKind, Store};
//! use gpma_graph::{Edge, UpdateBatch};
//! use gpma_sim::DeviceConfig;
//!
//! let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
//! let mut store = Store::build_with(
//!     ApproachKind::GpmaPlus,
//!     4,
//!     &edges,
//!     DeviceConfig::deterministic(),
//! );
//! let secs = store.apply(&UpdateBatch {
//!     insertions: vec![Edge::new(2, 3)],
//!     deletions: vec![Edge::new(0, 1)],
//! });
//! assert!(secs > 0.0, "simulated device time for GPU stores");
//! assert_eq!(store.kind().name(), "GPMA+");
//! ```

#![warn(missing_docs)]

pub mod approaches;
pub mod apps;
pub mod experiments;
pub mod report;

pub use approaches::{ApproachKind, Store};
pub use apps::{run_app, App, AppRun};
pub use experiments::ExpConfig;

/// Bytes shipped per streamed update over PCIe (key + weight + op).
pub const BYTES_PER_UPDATE: usize = gpma_core::framework::BYTES_PER_UPDATE;

/// Feed `edges` through `producers` concurrent ingest handles (round-robin
/// split), join the feeders, then barrier-flush and return the resulting
/// snapshot. The shared driver for the `service` experiment and the
/// `service_throughput` bench, so their feeding policy cannot drift apart.
pub fn feed_concurrently(
    svc: &gpma_service::StreamingService,
    edges: &[gpma_graph::Edge],
    producers: usize,
) -> std::sync::Arc<gpma_core::framework::GraphSnapshot> {
    let producers = producers.max(1);
    let feeders: Vec<_> = (0..producers)
        .map(|p| {
            let h = svc.handle();
            let chunk: Vec<gpma_graph::Edge> =
                edges.iter().skip(p).step_by(producers).copied().collect();
            std::thread::spawn(move || {
                for e in chunk {
                    // A send error means the service shut down mid-feed
                    // (benchmark teardown racing the producers); stop
                    // feeding instead of panicking the producer thread.
                    if h.insert(e).is_err() {
                        eprintln!("gpma-bench: service closed mid-feed; producer stopping");
                        return;
                    }
                }
            })
        })
        .collect();
    for f in feeders {
        f.join().expect("producer thread");
    }
    svc.barrier().expect("service alive")
}

/// Cluster twin of [`feed_concurrently`]: stream `edges` through
/// `producers` cluster handles (round-robin split), join the feeders, then
/// take a coordinated epoch cut and return its snapshot. Shared by the
/// `cluster` experiment and the `cluster_scaling` bench.
pub fn feed_cluster_concurrently(
    cluster: &gpma_cluster::GraphCluster,
    edges: &[gpma_graph::Edge],
    producers: usize,
) -> std::sync::Arc<gpma_cluster::ClusterSnapshot> {
    let producers = producers.max(1);
    let feeders: Vec<_> = (0..producers)
        .map(|p| {
            let h = cluster.handle();
            let chunk: Vec<gpma_graph::Edge> =
                edges.iter().skip(p).step_by(producers).copied().collect();
            std::thread::spawn(move || {
                for e in chunk {
                    // Same policy as `feed_concurrently`: a closed cluster
                    // means teardown won the race; degrade, don't panic.
                    if h.insert(e).is_err() {
                        eprintln!("gpma-bench: cluster closed mid-feed; producer stopping");
                        return;
                    }
                }
            })
        })
        .collect();
    for f in feeders {
        f.join().expect("producer thread");
    }
    cluster.epoch_cut().expect("cluster alive")
}

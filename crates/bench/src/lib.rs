//! # gpma-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's Section 6 through the
//! `repro` binary (`cargo run -p gpma-bench --release --bin repro -- all`)
//! and exposes the uniform approach/application wrappers the Criterion
//! benches build on.
//!
//! Experiment index (DESIGN.md §5): `table1`, `table2`, `fig7` (updates vs
//! batch size), `fig8`/`fig9`/`fig10` (streaming BFS / CC / PageRank),
//! `fig11` (PCIe overlap), `fig12` (multi-GPU), `sorted`, `explicit`,
//! `ablation`.

pub mod approaches;
pub mod apps;
pub mod experiments;
pub mod report;

pub use approaches::{ApproachKind, Store};
pub use apps::{run_app, App, AppRun};
pub use experiments::ExpConfig;

/// Bytes shipped per streamed update over PCIe (key + weight + op).
pub const BYTES_PER_UPDATE: usize = gpma_core::framework::BYTES_PER_UPDATE;

//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (Section 6). Each prints the same rows/series the paper
//! reports and saves a CSV under `results/`.
//!
//! Times are reported in the store's native metric: host wall-clock for CPU
//! approaches, simulated device time for GPU approaches (see EXPERIMENTS.md
//! for the comparison methodology).

use gpma_core::framework::DynamicGraphSystem;
use gpma_core::multi::MultiGpma;
use gpma_core::{Gpma, GpmaPlus};
use gpma_graph::datasets::{generate, DatasetKind, DatasetStats};
use gpma_graph::{GraphStream, UpdateBatch};
use gpma_sim::pcie::{Pcie, Pipeline};
use gpma_sim::{Device, DeviceConfig, PcieConfig};
use rand::{Rng, SeedableRng};

use crate::approaches::{ApproachKind, Store};
use crate::apps::{run_app, App};
use crate::report::{emit, fmt_meps, fmt_ms};

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Dataset scale relative to Table 2 (1.0 = paper scale).
    pub scale: f64,
    /// RNG seed shared by every generator.
    pub seed: u64,
    /// Slides measured (and averaged) per configuration.
    pub max_slides: usize,
    /// Device configuration used by the GPU approaches.
    pub device_cfg: DeviceConfig,
    /// Smoke-run mode: experiments with pass/fail bounds (e.g. the elastic
    /// reshard-pause ceiling) enforce them only when set, so full-scale
    /// runs on loaded hosts report rather than abort.
    pub quick: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.005,
            seed: 42,
            max_slides: 3,
            device_cfg: DeviceConfig::default(),
            quick: false,
        }
    }
}

impl ExpConfig {
    /// Shrunk configuration for `--quick` smoke runs.
    pub fn quick() -> Self {
        ExpConfig {
            scale: 0.001,
            max_slides: 1,
            quick: true,
            ..Default::default()
        }
    }
}

// ----------------------------------------------------------------------
// Table 1 — experimented algorithms and compared approaches
// ----------------------------------------------------------------------

/// Table 1: the compared approaches and their properties (static).
pub fn table1() {
    let rows: Vec<Vec<String>> = vec![
        vec![
            "AdjLists (CPU)".into(),
            "per-vertex ordered trees".into(),
            "standard single-thread".into(),
            "standard single-thread".into(),
            "standard single-thread".into(),
        ],
        vec![
            "PMA (CPU)".into(),
            "packed memory array [10,11]".into(),
            "standard single-thread".into(),
            "standard single-thread".into(),
            "standard single-thread".into(),
        ],
        vec![
            "Stinger (CPU)".into(),
            "fixed edge blocks [19]".into(),
            "host algorithms (parallel updates)".into(),
            "host algorithms (parallel updates)".into(),
            "host algorithms (parallel updates)".into(),
        ],
        vec![
            "cuSparseCSR (GPU)".into(),
            "device CSR + rebuild [3]".into(),
            "device frontier BFS [37]".into(),
            "device hook+jump CC [43]".into(),
            "device SpMV power iteration [2]".into(),
        ],
        vec![
            "GPMA/GPMA+ (GPU)".into(),
            "this reproduction".into(),
            "device frontier BFS (gap-aware)".into(),
            "device hook+jump CC (gap-aware)".into(),
            "device SpMV (gap-aware)".into(),
        ],
    ];
    emit(
        "table1",
        "Table 1: graph algorithms and compared approaches",
        &["Approach", "Graph Container", "BFS", "ConnectedComponent", "PageRank"],
        &rows,
    );
}

// ----------------------------------------------------------------------
// Table 2 — dataset statistics
// ----------------------------------------------------------------------

/// Table 2: statistics of the four generated datasets.
pub fn table2(cfg: &ExpConfig) -> Vec<DatasetStats> {
    let mut rows = Vec::new();
    let mut stats_out = Vec::new();
    for kind in DatasetKind::ALL {
        let stream = generate(kind, cfg.scale, cfg.seed);
        let st = DatasetStats::of(&stream);
        let (pv, pe) = kind.paper_stats();
        rows.push(vec![
            st.name.clone(),
            format!("{}", st.vertices),
            format!("{}", st.edges),
            format!("{:.1}", st.avg_degree),
            format!("{}", st.initial_edges),
            format!("{:.1}", st.initial_avg_degree),
            format!("{:.2}M", pv as f64 / 1e6),
            format!("{:.1}M", pe as f64 / 1e6),
        ]);
        stats_out.push(st);
    }
    emit(
        "table2",
        &format!("Table 2: dataset statistics (scale = {})", cfg.scale),
        &["Dataset", "|V|", "|E|", "|E|/|V|", "|Es|", "|Es|/|V|", "paper |V|", "paper |E|"],
        &rows,
    );
    stats_out
}

// ----------------------------------------------------------------------
// Figure 7 — update latency vs sliding batch size
// ----------------------------------------------------------------------

/// Figure 7: update latency versus sliding-batch size, per approach.
pub fn fig7(cfg: &ExpConfig) {
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let stream = generate(kind, cfg.scale, cfg.seed);
        let max_batch = (stream.initial_size() / 4).max(1);
        // Base-4 exponential batch sizes, as Figure 7's log-scale x-axis.
        let mut batch_sizes = Vec::new();
        let mut b = 1usize;
        while b <= max_batch && b <= 1 << 20 {
            batch_sizes.push(b);
            b *= 4;
        }
        for approach in ApproachKind::ALL {
            let mut store = Store::build_with(
                approach,
                stream.num_vertices,
                stream.initial_edges(),
                cfg.device_cfg.clone(),
            );
            // Walk the stream forward across batch sizes on one store.
            let mut start = 0usize;
            let mut end = stream.initial_size();
            for &bsz in &batch_sizes {
                let mut total = 0.0f64;
                let mut slides = 0usize;
                for _ in 0..cfg.max_slides {
                    if end + bsz > stream.len() {
                        break;
                    }
                    let batch = UpdateBatch {
                        insertions: stream.edges[end..end + bsz].to_vec(),
                        deletions: stream.edges[start..start + bsz].to_vec(),
                    };
                    total += store.apply(&batch);
                    start += bsz;
                    end += bsz;
                    slides += 1;
                }
                if slides == 0 {
                    continue;
                }
                rows.push(vec![
                    kind.name().to_string(),
                    approach.name().to_string(),
                    format!("{bsz}"),
                    fmt_ms(total / slides as f64),
                    if approach.is_device() { "sim" } else { "wall" }.to_string(),
                ]);
            }
        }
        eprintln!("fig7: {} done", kind.name());
    }
    emit(
        "fig7",
        "Figure 7: avg update time per slide vs batch size (ms)",
        &["Dataset", "Approach", "BatchSize", "UpdateMs", "Metric"],
        &rows,
    );
}

// ----------------------------------------------------------------------
// Figures 8/9/10 — streaming applications
// ----------------------------------------------------------------------

/// Slide ratios of Figures 8–10 ("0.01%", "0.1%", "1%").
pub const SLIDE_RATIOS: [f64; 3] = [0.0001, 0.001, 0.01];

/// Figures 8-10: streaming application latency at each slide ratio.
pub fn fig_app(cfg: &ExpConfig, app: App, fig_name: &str) {
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let stream = generate(kind, cfg.scale, cfg.seed);
        for ratio in SLIDE_RATIOS {
            let batch = stream.slide_batch_size(ratio);
            let mut digests: Vec<(ApproachKind, u64)> = Vec::new();
            for approach in ApproachKind::ALL {
                let mut store = Store::build_with(
                    approach,
                    stream.num_vertices,
                    stream.initial_edges(),
                    cfg.device_cfg.clone(),
                );
                let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed ^ 0x5EED);
                let mut upd = 0.0f64;
                let mut ana = 0.0f64;
                let mut slides = 0usize;
                let mut last_digest = 0u64;
                for b in stream.sliding(batch).take(cfg.max_slides) {
                    upd += store.apply(&b);
                    let root = rng.gen_range(0..stream.num_vertices);
                    let run = run_app(app, &store, root);
                    ana += run.seconds;
                    last_digest = run.digest;
                    slides += 1;
                }
                if slides == 0 {
                    continue;
                }
                digests.push((approach, last_digest));
                rows.push(vec![
                    kind.name().to_string(),
                    format!("{}%", ratio * 100.0),
                    approach.name().to_string(),
                    fmt_ms(upd / slides as f64),
                    fmt_ms(ana / slides as f64),
                    format!("{last_digest}"),
                ]);
            }
            // Cross-approach consistency: every store saw the same batches,
            // so the analytic digests must agree.
            if let Some((_, first)) = digests.first() {
                for (k, d) in &digests {
                    if d != first {
                        eprintln!(
                            "WARNING {fig_name}: digest mismatch on {} {}: {} vs {}",
                            kind.name(),
                            k.name(),
                            d,
                            first
                        );
                    }
                }
            }
        }
        eprintln!("{fig_name}: {} done", kind.name());
    }
    emit(
        fig_name,
        &format!(
            "Figure {}: streaming {} — avg per-slide update & analytics time (ms)",
            &fig_name[3..],
            app.name()
        ),
        &["Dataset", "Slide", "Approach", "UpdateMs", "AnalyticsMs", "Digest"],
        &rows,
    );
}

// ----------------------------------------------------------------------
// Figure 11 — asynchronous-stream transfer hiding
// ----------------------------------------------------------------------

/// Figure 11: PCIe transfer hiding with the asynchronous-stream pipeline.
pub fn fig11(cfg: &ExpConfig) {
    let pipeline = Pipeline::new(Pcie::new(PcieConfig::default()));
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let stream = generate(kind, cfg.scale, cfg.seed);
        for ratio in SLIDE_RATIOS {
            let batch = stream.slide_batch_size(ratio);
            let dev = Device::new(cfg.device_cfg.clone());
            let mut g = GpmaPlus::build(&dev, stream.num_vertices, stream.initial_edges());
            let mut update_t = 0.0;
            let mut bfs_t = 0.0;
            let mut slides = 0;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed);
            for b in stream.sliding(batch).take(cfg.max_slides) {
                let (_, tu) = dev.timed(|d| {
                    g.update_batch_lazy(d, &b);
                });
                let root = rng.gen_range(0..stream.num_vertices);
                let (_, ta) = dev.timed(|d| {
                    let view = gpma_analytics::GpmaView::build(d, &g.storage);
                    let _ = gpma_analytics::bfs_device(d, &view, root);
                });
                update_t += tu.secs();
                bfs_t += ta.secs();
                slides += 1;
            }
            if slides == 0 {
                continue;
            }
            let update_t = update_t / slides as f64;
            let bfs_t = bfs_t / slides as f64;
            let send_bytes = batch * crate::BYTES_PER_UPDATE;
            let fetch_bytes = stream.num_vertices as usize * 4; // distance vector
            let sched = pipeline.step_from_bytes(
                send_bytes,
                fetch_bytes,
                gpma_sim::SimTime(update_t),
                gpma_sim::SimTime(bfs_t),
            );
            rows.push(vec![
                kind.name().to_string(),
                format!("{}%", ratio * 100.0),
                fmt_ms(update_t),
                fmt_ms(bfs_t),
                fmt_ms(sched.costs.h2d_updates.secs()),
                fmt_ms(sched.costs.d2h_results.secs()),
                fmt_ms(sched.makespan.secs()),
                fmt_ms(sched.serialized.secs()),
                if sched.transfers_hidden { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    emit(
        "fig11",
        "Figure 11: concurrent transfer & compute with async streams (GPMA+, BFS)",
        &[
            "Dataset", "Slide", "UpdateMs", "BfsMs", "SendMs", "FetchMs", "StepMs",
            "SerializedMs", "Hidden",
        ],
        &rows,
    );
}

// ----------------------------------------------------------------------
// Figure 12 — multi-GPU throughput
// ----------------------------------------------------------------------

/// Figure 12: multi-GPU update and analytics scaling.
pub fn fig12(cfg: &ExpConfig) {
    // Paper sizes 600M/1.2B/1.8B edges, scaled by `cfg.scale / 0.005 * 1e-3`
    // relative adjustment: we derive from cfg.scale so --quick shrinks it.
    let base_edges = ((600_000_000f64 * cfg.scale * 0.2) as usize).max(20_000);
    let mut rows = Vec::new();
    for mult in 1..=3usize {
        let edges = base_edges * mult;
        let vertices = (edges / 100).next_power_of_two() as u32;
        let scale_bits = vertices.trailing_zeros();
        let coo = gpma_graph::gen::rmat(scale_bits, edges, cfg.seed + mult as u64);
        let stream = GraphStream::from_coo_shuffled(
            format!("Graph500-{}x", mult),
            coo,
            cfg.seed ^ 0xF16,
        );
        let batch = stream.slide_batch_size(0.01); // 1% slide, as §6.4
        for nd in 1..=3usize {
            let mut m = MultiGpma::build(
                &cfg.device_cfg,
                nd,
                stream.num_vertices,
                stream.initial_edges(),
            );
            // Update throughput over one slide.
            let mut slides = stream.sliding(batch);
            let b = slides.next().expect("stream too short for fig12");
            let ut = m.update_batch(&b);
            let update_tp = fmt_meps(b.len(), ut.total().secs());
            // Application throughput: edges processed / total time.
            let ne = m.num_edges();
            let (_, pr_t) = gpma_analytics::multi::pagerank_multi(&mut m, 0.85, 1e-3, 50);
            let pr_tp = fmt_meps(ne * pr_t.iterations.max(1), pr_t.total().secs());
            let (_, bfs_t) = gpma_analytics::multi::bfs_multi(&mut m, 0);
            let bfs_tp = fmt_meps(ne, bfs_t.total().secs());
            let (_, cc_t) = gpma_analytics::multi::cc_multi(&mut m);
            let cc_tp = fmt_meps(ne * cc_t.iterations.max(1), cc_t.total().secs());
            rows.push(vec![
                format!("{}", edges),
                format!("{nd}"),
                update_tp,
                pr_tp,
                bfs_tp,
                cc_tp,
            ]);
            eprintln!("fig12: |E|={edges} on {nd} GPU(s) done");
        }
    }
    emit(
        "fig12",
        "Figure 12: multi-GPU throughput on Graph500 (million edges/second)",
        &["Edges", "GPUs", "UpdateMeps", "PageRankMeps", "BfsMeps", "CcMeps"],
        &rows,
    );
}

// ----------------------------------------------------------------------
// §6.2 extended — sorted (locality-clustered) streams
// ----------------------------------------------------------------------

/// §6.2 extended: locality-clustered (key-sorted) update streams.
pub fn sorted_stream(cfg: &ExpConfig) {
    let stream = generate(DatasetKind::Graph500, cfg.scale, cfg.seed);
    let sorted = stream.sorted_by_key();
    let batch = stream.slide_batch_size(0.001).max(256);
    let mut rows = Vec::new();
    for (label, s) in [("random-order", &stream), ("key-sorted", &sorted)] {
        // GPMA (lock-based): clustered batches conflict heavily.
        let dev = Device::new(cfg.device_cfg.clone());
        let mut g = Gpma::build(&dev, s.num_vertices, s.initial_edges());
        let mut t_gpma = 0.0;
        let mut rounds = 0usize;
        let mut aborts = 0u64;
        let mut slides = 0usize;
        for b in s.sliding(batch).take(cfg.max_slides) {
            let (st, t) = dev.timed(|d| g.update_batch(d, &b));
            t_gpma += t.secs();
            rounds += st.rounds;
            aborts += st.aborts;
            slides += 1;
        }
        // GPMA+: insensitive to update locality.
        let dev2 = Device::new(cfg.device_cfg.clone());
        let mut gp = GpmaPlus::build(&dev2, s.num_vertices, s.initial_edges());
        let mut t_plus = 0.0;
        for b in s.sliding(batch).take(cfg.max_slides) {
            let (_, t) = dev2.timed(|d| {
                gp.update_batch_lazy(d, &b);
            });
            t_plus += t.secs();
        }
        let n = slides.max(1) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{batch}"),
            fmt_ms(t_gpma / n),
            format!("{:.1}", rounds as f64 / n),
            format!("{:.0}", aborts as f64 / n),
            fmt_ms(t_plus / n),
        ]);
    }
    emit(
        "sorted",
        "§6.2 extreme case: sorted graph streams (GPMA conflicts vs GPMA+)",
        &["StreamOrder", "Batch", "GpmaMs", "GpmaRounds", "GpmaAborts", "GpmaPlusMs"],
        &rows,
    );
}

// ----------------------------------------------------------------------
// §6.3 extended — explicit random insertions/deletions
// ----------------------------------------------------------------------

/// §6.3 extended: explicit random insert/delete streams.
pub fn explicit_stream(cfg: &ExpConfig) {
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let stream = generate(kind, cfg.scale, cfg.seed);
        let batch = stream.slide_batch_size(0.01);
        for approach in ApproachKind::ALL {
            let mut store = Store::build_with(
                approach,
                stream.num_vertices,
                stream.initial_edges(),
                cfg.device_cfg.clone(),
            );
            let mut t = 0.0;
            let mut slides = 0;
            for b in stream.explicit(batch, 0.5, cfg.seed).take(cfg.max_slides) {
                t += store.apply(&b);
                slides += 1;
            }
            if slides == 0 {
                continue;
            }
            rows.push(vec![
                kind.name().to_string(),
                approach.name().to_string(),
                format!("{batch}"),
                fmt_ms(t / slides as f64),
            ]);
        }
        eprintln!("explicit: {} done", kind.name());
    }
    emit(
        "explicit",
        "Extended: explicit random insert/delete batches (50/50), 1% batch",
        &["Dataset", "Approach", "Batch", "UpdateMs"],
        &rows,
    );
}

// ----------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ----------------------------------------------------------------------

// ----------------------------------------------------------------------
// Service — concurrent streaming facade throughput (§6.5 scenario)
// ----------------------------------------------------------------------

/// Streaming-service scaling: end-to-end ingest of the live half of the
/// Reddit stream through `gpma-service` with a growing producer count.
/// Host wall-clock (the queueing and flush cadence are real host work);
/// the simulated device time spent inside flushes is reported alongside.
pub fn service(cfg: &ExpConfig) {
    use gpma_graph::Edge;
    use gpma_service::{ServiceConfig, StreamingService};

    let stream = generate(DatasetKind::RedditLike, cfg.scale, cfg.seed);
    let batch = stream.slide_batch_size(0.01).max(1);
    // Bound the fed tail so `--quick` stays a smoke run.
    let cap = (batch * 20 * cfg.max_slides.max(1)).min(stream.len() - stream.initial_size());
    let tail: Vec<Edge> = stream.edges[stream.initial_size()..stream.initial_size() + cap].to_vec();

    let mut rows = Vec::new();
    for producers in [1usize, 2, 4, 8] {
        let dev = Device::new(cfg.device_cfg.clone());
        let sys = DynamicGraphSystem::new(dev, stream.num_vertices, stream.initial_edges(), batch);
        let svc = StreamingService::spawn(ServiceConfig::default(), sys);
        let t0 = std::time::Instant::now();
        let snap = crate::feed_concurrently(&svc, &tail, producers);
        let wall = t0.elapsed().as_secs_f64();
        let report = svc.shutdown();
        let c = &report.metrics.counters;
        rows.push(vec![
            format!("{producers}"),
            format!("{}", c.ingested()),
            fmt_meps(c.ingested() as usize, wall),
            format!("{}", c.flushes),
            fmt_ms(c.avg_flush_wall_secs()),
            fmt_ms(c.update_sim.secs() / c.flushes.max(1) as f64),
            format!("{}", c.max_queue_depth),
            format!("{}", snap.epoch()),
        ]);
    }
    emit(
        "service",
        "Streaming service: concurrent ingest through the facade (Reddit, 1% flush batches)",
        &[
            "Producers", "Updates", "HostMeps", "Flushes", "FlushMs", "SimUpdateMs", "MaxQueue",
            "FinalEpoch",
        ],
        &rows,
    );
}

// ----------------------------------------------------------------------
// Cluster — sharded streaming service scaling (§6.6 / Figure 12 trade-off)
// ----------------------------------------------------------------------

/// Shard-scaling study of the `gpma-cluster` facade: stream the live half
/// of a Graph500 stream through 1/2/4/8-shard clusters under both
/// partitioning policies, then run the distributed analytics on the final
/// coordinated cut. Reports host ingest throughput, routing balance, the
/// modeled cross-shard transfer volume, and the frontier/rank exchange
/// traffic — Figure 12's trade-off space with communication made explicit.
/// Also measures the single-device GPMA+ update hot path (wall + sim) so
/// the perf trajectory of the streaming path accumulates run over run.
/// Saves `results/cluster.csv` and machine-readable
/// `results/BENCH_cluster.json`.
pub fn cluster(cfg: &ExpConfig) {
    use gpma_analytics::{bfs_sharded, pagerank_sharded};
    use gpma_cluster::{ClusterConfig, GraphCluster, PartitionPolicy};

    const PRODUCERS: usize = 4;
    let stream = generate(DatasetKind::Graph500, cfg.scale, cfg.seed);
    let nv = stream.num_vertices;
    let batch = stream.slide_batch_size(0.01).max(1);
    // Bound the fed tail so `--quick` stays a smoke run.
    let cap = (batch * 20 * cfg.max_slides.max(1)).min(stream.len() - stream.initial_size());
    let tail = &stream.edges[stream.initial_size()..stream.initial_size() + cap];
    let link = Pcie::new(PcieConfig::default());

    // Single-device update hot path: the streaming flush loop the perf
    // work targets (reusable upload staging + merge-tier scratch).
    let hot = {
        let dev = Device::new(cfg.device_cfg.clone());
        let mut g = GpmaPlus::build(&dev, nv, stream.initial_edges());
        let t0 = std::time::Instant::now();
        let mut sim = 0.0f64;
        let mut batches = 0usize;
        for b in tail.chunks(batch) {
            let ub = UpdateBatch {
                insertions: b.to_vec(),
                deletions: vec![],
            };
            let (_, t) = dev.timed(|d| {
                g.update_batch_lazy(d, &ub);
            });
            sim += t.secs();
            batches += 1;
        }
        (batches, tail.len(), t0.elapsed().as_secs_f64(), sim)
    };

    let mut rows = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    for policy in [PartitionPolicy::VertexHash, PartitionPolicy::EdgeGrid] {
        for shards in [1usize, 2, 4, 8] {
            let part = policy.build(nv, shards);
            let cluster = GraphCluster::spawn(
                ClusterConfig {
                    flush_threshold: batch,
                    ..Default::default()
                },
                &cfg.device_cfg,
                part,
                stream.initial_edges(),
            );
            let t0 = std::time::Instant::now();
            let snap = crate::feed_cluster_concurrently(&cluster, tail, PRODUCERS);
            let wall = t0.elapsed().as_secs_f64();

            // Distributed analytics over the cut's shard snapshots.
            let refs = snap.shard_refs();
            let (_, bfs_stats) = bfs_sharded(&refs, nv, 0, &link);
            let (pr, pr_stats) = pagerank_sharded(&refs, nv, 0.85, 1e-3, 50, &link);

            let report = cluster.shutdown();
            let m = &report.metrics;
            let t = m.total_transfer();
            let flushes: u64 = m.shards.iter().map(|s| s.counters.flushes).sum();
            rows.push(vec![
                policy.name().to_string(),
                format!("{shards}"),
                format!("{}", m.ingested()),
                fmt_meps(m.ingested() as usize, wall),
                format!("{:.1}%", m.cut_fraction() * 100.0),
                format!("{:.2}", m.imbalance()),
                format!("{}", t.bytes / 1024),
                fmt_ms(t.time.secs()),
                format!("{flushes}"),
                fmt_ms(bfs_stats.comm.secs()),
                format!("{}", bfs_stats.bytes / 1024),
                format!("{}", pr.iterations),
                fmt_ms(pr_stats.comm.secs()),
                format!("{}", pr_stats.bytes / 1024),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"policy\": \"{}\", \"shards\": {}, \"updates\": {}, ",
                    "\"ingest_wall_secs\": {:.6}, \"cut_edge_fraction\": {:.4}, ",
                    "\"route_imbalance\": {:.4}, \"router_transfer_bytes\": {}, ",
                    "\"router_transfer_secs\": {:.6}, \"router_dmas\": {}, ",
                    "\"shard_flushes\": {}, \"final_edges\": {}, ",
                    "\"bfs_supersteps\": {}, \"bfs_exchange_bytes\": {}, ",
                    "\"bfs_comm_secs\": {:.6}, \"pagerank_iters\": {}, ",
                    "\"pagerank_exchange_bytes\": {}, \"pagerank_comm_secs\": {:.6}}}"
                ),
                policy.name(),
                shards,
                m.ingested(),
                wall,
                m.cut_fraction(),
                m.imbalance(),
                t.bytes,
                t.time.secs(),
                t.transfers,
                flushes,
                report.final_snapshot.num_edges(),
                bfs_stats.supersteps,
                bfs_stats.bytes,
                bfs_stats.comm.secs(),
                pr.iterations,
                pr_stats.bytes,
                pr_stats.comm.secs(),
            ));
            eprintln!("cluster: {} × {shards} shard(s) done", policy.name());
        }
    }
    emit(
        "cluster",
        "Cluster: sharded streaming service scaling (Graph500, 4 producers, 1% flush batches)",
        &[
            "Policy", "Shards", "Updates", "HostMeps", "CutEdge", "Imbal", "RouteKB",
            "RouteMs", "Flushes", "BfsCommMs", "BfsKB", "PrIters", "PrCommMs", "PrKB",
        ],
        &rows,
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"cluster\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"seed\": {},\n",
            "  \"num_vertices\": {},\n",
            "  \"streamed_updates\": {},\n",
            "  \"producers\": {},\n",
            "  \"flush_batch\": {},\n",
            "  \"update_hot_path\": {{\"batches\": {}, \"updates\": {}, ",
            "\"wall_secs\": {:.6}, \"sim_secs\": {:.6}}},\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        crate::report::json_escape(&stream.name),
        cfg.scale,
        cfg.seed,
        nv,
        tail.len(),
        PRODUCERS,
        batch,
        hot.0,
        hot.1,
        hot.2,
        hot.3,
        json_rows.join(",\n"),
    );
    if let Err(e) = crate::report::save_json("BENCH_cluster", &json) {
        eprintln!("(json save failed for cluster: {e})");
    }
}

// ----------------------------------------------------------------------
// Incremental — delta publication + incremental analytics vs full
// republication / from-scratch recompute
// ----------------------------------------------------------------------

/// The `gpma-incremental` headline experiment: slide a Graph500 window for
/// ~10k one-flush epochs and compare, per epoch,
///
/// * **bytes published**: the O(|Δ|) `SnapshotDelta` wire size against the
///   O(E) full-snapshot copy the pre-delta read path shipped, and
/// * **analytics work**: the incremental BFS / CC / PageRank maintainers'
///   repair work against the from-scratch host oracles (sampled every few
///   hundred epochs, extrapolated, and *checked for exact agreement*).
///
/// Also re-measures the single-device GPMA+ update hot path (this PR:
/// the level-compaction chains in `apply_sorted` reuse device buffers and
/// share one keep-mask scan). Saves `results/incremental.csv` and
/// machine-readable `results/BENCH_incremental.json`.
pub fn incremental(cfg: &ExpConfig) {
    use gpma_analytics::{bfs_host, cc_host, pagerank_host};
    use gpma_core::delta::BYTES_PER_EDGE;
    use gpma_incremental::IncrementalEngine;

    let stream = generate(DatasetKind::Graph500, cfg.scale, cfg.seed);
    let nv = stream.num_vertices;
    let tail = stream.len() - stream.initial_size();
    // ~10k epochs at the default scale; the quick smoke keeps a few
    // hundred. Epochs are *delta-sized* by design (the paper's premise):
    // cap the per-epoch slide at 0.02% of the stream so the comparison
    // measures the small-batch steady state, not bulk reloads.
    let target_epochs = if cfg.max_slides <= 1 { 300 } else { 10_000 };
    let batch = (tail / target_epochs)
        .clamp(1, stream.slide_batch_size(0.0002));
    let epochs = (tail / batch).min(target_epochs);
    let root = stream.initial_edges()[0].src;

    let dev = Device::new(cfg.device_cfg.clone());
    let mut sys = DynamicGraphSystem::new(dev, nv, stream.initial_edges(), batch);
    let mut engine = IncrementalEngine::new()
        .with_bfs(root)
        .with_cc()
        .with_pagerank(0.85, 1e-3);
    engine.rebase(&sys.snapshot());
    let rebase_work = engine.stats();

    let sample_every = (epochs / 8).max(1);
    let mut delta_bytes = 0u64;
    let mut snapshot_bytes = 0u64;
    let mut engine_wall = 0.0f64;
    let mut samples = 0u64;
    let mut oracle_wall = 0.0f64;
    let (mut scratch_bfs, mut scratch_cc, mut scratch_pr) = (0u64, 0u64, 0u64);
    let mut agreement = true;
    for (i, b) in stream.sliding(batch).take(epochs).enumerate() {
        sys.stream.offer_batch(&b);
        let report = sys.flush();
        delta_bytes += report.delta.wire_bytes() as u64;
        snapshot_bytes += (8 + sys.graph.storage.num_edges() * BYTES_PER_EDGE) as u64;
        let t0 = std::time::Instant::now();
        engine.apply(&report.delta);
        engine_wall += t0.elapsed().as_secs_f64();

        if (i + 1) % sample_every == 0 {
            // From-scratch oracles on the same graph state: timed for the
            // work comparison, checked for agreement with the maintainers.
            let live = nv as u64 + engine.graph().num_edges() as u64;
            let t0 = std::time::Instant::now();
            let dist = bfs_host(engine.graph(), root);
            let labels = cc_host(engine.graph());
            let pr = pagerank_host(engine.graph(), 0.85, 1e-3, 200);
            oracle_wall += t0.elapsed().as_secs_f64();
            samples += 1;
            scratch_bfs += live;
            scratch_cc += live;
            scratch_pr += pr.iterations as u64 * live;
            let bfs_ok = engine.bfs().unwrap().distances() == dist.as_slice();
            let cc_ok = engine.cc_mut().unwrap().labels() == labels;
            let pr_ok = engine
                .pagerank()
                .unwrap()
                .ranks()
                .iter()
                .zip(&pr.ranks)
                .all(|(a, b)| (a - b).abs() < 2e-2);
            if !(bfs_ok && cc_ok && pr_ok) {
                eprintln!(
                    "incremental: oracle mismatch at epoch {} (bfs={bfs_ok} cc={cc_ok} pr={pr_ok})",
                    i + 1
                );
            }
            agreement &= bfs_ok && cc_ok && pr_ok;
        }
    }
    let stats = engine.stats();
    let extrapolate =
        |sampled: u64| sampled.checked_div(samples).map_or(0, |per| per * epochs as u64);
    let (sb, sc, sp) = (
        extrapolate(scratch_bfs),
        extrapolate(scratch_cc),
        extrapolate(scratch_pr),
    );
    let ratio = |inc: u64, scratch: u64| {
        if inc == 0 {
            0.0
        } else {
            scratch as f64 / inc as f64
        }
    };
    let inc_bfs = stats.bfs_work - rebase_work.bfs_work;
    let inc_cc = stats.cc_work - rebase_work.cc_work;
    let inc_pr = stats.pagerank_work - rebase_work.pagerank_work;

    // Update hot path: the streaming flush loop the level-scratch reuse
    // targets (same shape as the cluster experiment's block, so the wall
    // numbers are comparable across BENCH_*.json files).
    let hot = {
        let dev = Device::new(cfg.device_cfg.clone());
        let mut g = GpmaPlus::build(&dev, nv, stream.initial_edges());
        let hot_batch = stream.slide_batch_size(0.01).max(1);
        let cap = (hot_batch * 20 * cfg.max_slides.max(1)).min(tail);
        let hot_tail = &stream.edges[stream.initial_size()..stream.initial_size() + cap];
        let t0 = std::time::Instant::now();
        let mut sim = 0.0f64;
        let mut batches = 0usize;
        for b in hot_tail.chunks(hot_batch) {
            let ub = UpdateBatch {
                insertions: b.to_vec(),
                deletions: vec![],
            };
            let (_, t) = dev.timed(|d| {
                g.update_batch_lazy(d, &ub);
            });
            sim += t.secs();
            batches += 1;
        }
        (batches, hot_tail.len(), t0.elapsed().as_secs_f64(), sim)
    };

    let rows = vec![
        vec![
            "delta-publication".to_string(),
            format!("{}", delta_bytes / epochs as u64),
            format!("{}", snapshot_bytes / epochs as u64),
            format!("{:.1}×", ratio(delta_bytes, snapshot_bytes)),
            "bytes/epoch".to_string(),
        ],
        vec![
            "incremental-bfs".to_string(),
            format!("{}", inc_bfs / epochs as u64),
            format!("{}", sb / epochs as u64),
            format!("{:.1}×", ratio(inc_bfs, sb)),
            "work/epoch".to_string(),
        ],
        vec![
            "incremental-cc".to_string(),
            format!("{}", inc_cc / epochs as u64),
            format!("{}", sc / epochs as u64),
            format!("{:.1}×", ratio(inc_cc, sc)),
            "work/epoch".to_string(),
        ],
        vec![
            "delta-pagerank".to_string(),
            format!("{}", inc_pr / epochs as u64),
            format!("{}", sp / epochs as u64),
            format!("{:.1}×", ratio(inc_pr, sp)),
            "work/epoch".to_string(),
        ],
    ];
    emit(
        "incremental",
        &format!(
            "Incremental engine vs full republication/recompute \
             (Graph500, {epochs} epochs × {batch} updates, agreement={agreement})"
        ),
        &["Path", "Incremental", "FullPerEpoch", "Saving", "Unit"],
        &rows,
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"incremental\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"seed\": {},\n",
            "  \"num_vertices\": {},\n",
            "  \"epochs\": {},\n",
            "  \"batch\": {},\n",
            "  \"oracle_samples\": {},\n",
            "  \"oracle_agreement\": {},\n",
            "  \"publication\": {{\"delta_bytes_per_epoch\": {}, ",
            "\"snapshot_bytes_per_epoch\": {}, \"bytes_saving\": {:.2}}},\n",
            "  \"work_per_epoch\": {{\n",
            "    \"bfs\": {{\"incremental\": {}, \"from_scratch\": {}, \"saving\": {:.2}}},\n",
            "    \"cc\": {{\"incremental\": {}, \"from_scratch\": {}, \"saving\": {:.2}}},\n",
            "    \"pagerank\": {{\"incremental\": {}, \"from_scratch\": {}, \"saving\": {:.2}}}\n",
            "  }},\n",
            "  \"engine_wall_secs\": {:.6},\n",
            "  \"oracle_wall_secs_sampled\": {:.6},\n",
            "  \"update_hot_path\": {{\"batches\": {}, \"updates\": {}, ",
            "\"wall_secs\": {:.6}, \"sim_secs\": {:.6}}}\n",
            "}}\n"
        ),
        crate::report::json_escape(&stream.name),
        cfg.scale,
        cfg.seed,
        nv,
        epochs,
        batch,
        samples,
        agreement,
        delta_bytes / epochs as u64,
        snapshot_bytes / epochs as u64,
        ratio(delta_bytes, snapshot_bytes),
        inc_bfs / epochs as u64,
        sb / epochs as u64,
        ratio(inc_bfs, sb),
        inc_cc / epochs as u64,
        sc / epochs as u64,
        ratio(inc_cc, sc),
        inc_pr / epochs as u64,
        sp / epochs as u64,
        ratio(inc_pr, sp),
        engine_wall,
        oracle_wall,
        hot.0,
        hot.1,
        hot.2,
        hot.3,
    );
    if let Err(e) = crate::report::save_json("BENCH_incremental", &json) {
        eprintln!("(json save failed for incremental: {e})");
    }
    assert!(agreement, "incremental maintainers diverged from the oracles");
}

// ----------------------------------------------------------------------
// Elastic — live resharding with skew-driven degree-aware rebalancing
// ----------------------------------------------------------------------

/// The cluster-elasticity experiment: stream the first half of a power-law
/// (Graph500) stream into a static cluster, read the accumulated
/// `routing_skew`, then live-`rebalance` onto the degree-aware plan built
/// from the router's observations and stream the second half. Reports, per
/// policy × shard count,
///
/// * **skew before/after**: max/mean routed updates under the spawn policy
///   vs under the degree-aware plan (the edge grid's ~2× power-law
///   imbalance should drop below 1.2×),
/// * **migration cost**: edges moved and modeled bytes shipped vs the
///   bytes a from-scratch repartition would ship, and
/// * **pause**: the copy-on-write split — `pause_secs` is the swap window
///   producers can feel, `background_secs` the frozen-cut copy and delta
///   replay that overlapped live ingest — vs the wall cost of bulk-building
///   a fresh cluster from the same state. Producers keep streaming *during*
///   the reshard; the client-observed enqueue p99 while a reshard is in
///   flight (`ingest.reshard`) is reported next to the steady-state p99.
///
/// Saves `results/elastic.csv` and machine-readable
/// `results/BENCH_elastic.json`.
pub fn elastic(cfg: &ExpConfig) {
    use gpma_cluster::{ClusterConfig, GraphCluster, PartitionPolicy};
    use gpma_obs::Stage;

    const PRODUCERS: usize = 4;
    let stream = generate(DatasetKind::Graph500, cfg.scale, cfg.seed);
    let nv = stream.num_vertices;
    let batch = stream.slide_batch_size(0.01).max(1);
    let cap = (batch * 40 * cfg.max_slides.max(1)).min(stream.len() - stream.initial_size());
    let tail = &stream.edges[stream.initial_size()..stream.initial_size() + cap];
    let (first_half, second_half) = tail.split_at(tail.len() / 2);
    // A bounded slice streams *through* the reshard (exercising the
    // copy-on-write replay path); the rest lands after the swap so the
    // post-swap routing window has traffic to measure skew from. The live
    // slice is capped at a few flush batches: the zero-pause contract holds
    // for arrivals below apply capacity — producers that outrun the shards
    // indefinitely turn the final settle into a backlog drain no reshard
    // protocol can avoid paying.
    let live_cap = (8 * batch).min(second_half.len() / 2);
    let (during_slice, after_slice) = second_half.split_at(live_cap);

    // Spawn producers that stream `edges` without joining, so the reshard
    // below runs with ingest live.
    let spawn_live = |cluster: &GraphCluster, edges: &[gpma_graph::Edge]| {
        (0..PRODUCERS)
            .map(|p| {
                let h = cluster.handle();
                let chunk: Vec<gpma_graph::Edge> =
                    edges.iter().skip(p).step_by(PRODUCERS).copied().collect();
                std::thread::spawn(move || {
                    for e in chunk {
                        if h.insert(e).is_err() {
                            eprintln!("gpma-bench: cluster closed mid-feed; producer stopping");
                            return;
                        }
                    }
                })
            })
            .collect::<Vec<_>>()
    };

    let link = Pcie::new(PcieConfig::default());
    let mut rows = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    for policy in [PartitionPolicy::VertexHash, PartitionPolicy::EdgeGrid] {
        for shards in [4usize, 8] {
            let cluster = GraphCluster::spawn(
                ClusterConfig {
                    flush_threshold: batch,
                    ..Default::default()
                },
                &cfg.device_cfg,
                policy.build(nv, shards),
                stream.initial_edges(),
            );
            crate::feed_cluster_concurrently(&cluster, first_half, PRODUCERS);
            let before = cluster
                .metrics()
                .expect("cluster alive")
                .routing_skew()
                .max_mean_updates;
            let steady_p99 = cluster.obs().hist(Stage::IngestEnqueue).snapshot().p99;

            // Rebalance with ingest live: the producers race the reshard,
            // so `pause_secs` and the `ingest.reshard` histogram reflect
            // what clients actually felt mid-migration.
            let live = spawn_live(&cluster, during_slice);
            let report = cluster
                .rebalance(None)
                .expect("degree-aware rebalance succeeds");
            for f in live {
                f.join().expect("live producer");
            }
            crate::feed_cluster_concurrently(&cluster, after_slice, PRODUCERS);
            let during = cluster.obs().hist(Stage::IngestReshard).snapshot();
            let flush_max_secs = cluster.obs().hist(Stage::FlushApply).snapshot().max as f64 / 1e6;
            let quiesce_us = cluster.obs().hist(Stage::ReshardQuiesce).snapshot().max;
            let resume_us = cluster.obs().hist(Stage::ReshardResume).snapshot().max;
            let metrics = cluster.metrics().expect("cluster alive");
            let after = metrics.routing_skew().max_mean_updates;
            let stats = metrics.migration_stats();
            let final_snap = cluster.snapshot();
            let final_edges = final_snap.num_edges();
            drop(cluster.shutdown());

            // Copy-on-write keeps the swap window bounded by draining one
            // trailing flush, and enqueue stays wait-free mid-reshard. The
            // p99 bound carries an absolute floor so an integer-µs zero
            // bucket on the steady side can't make the 2× ratio degenerate.
            if cfg.quick {
                let pause_bound = (4.0 * flush_max_secs).max(0.05);
                assert!(
                    report.pause_secs < pause_bound,
                    "{} × {shards}: pause {:.4}s must stay below one flush drain ({:.4}s)",
                    policy.name(),
                    report.pause_secs,
                    pause_bound
                );
            }
            assert!(
                (during.p99 as f64) <= (2.0 * steady_p99 as f64).max(200.0),
                "{} × {shards}: mid-reshard enqueue p99 {}µs vs steady {}µs",
                policy.name(),
                during.p99,
                steady_p99
            );

            // The alternative the live path is measured against: stop the
            // world and bulk-rebuild a fresh cluster from the full state
            // under the new plan.
            let rebuild_wall = {
                let edges = final_snap.merged_edges();
                let plan = gpma_cluster::DegreePartition::from_edges(nv, &edges, shards);
                let t0 = std::time::Instant::now();
                let fresh = GraphCluster::spawn(
                    ClusterConfig {
                        flush_threshold: batch,
                        ..Default::default()
                    },
                    &cfg.device_cfg,
                    std::sync::Arc::new(plan),
                    &edges,
                );
                let wall = t0.elapsed().as_secs_f64();
                drop(fresh.shutdown());
                wall
            };

            assert!(
                report.migration_bytes < report.full_rebuild_bytes,
                "{} × {shards}: migration must ship less than a rebuild",
                policy.name()
            );
            rows.push(vec![
                policy.name().to_string(),
                format!("{shards}"),
                format!("{:.3}", before),
                format!("{:.3}", after),
                format!("{}", report.migrated_edges),
                format!("{}", report.resident_edges),
                format!("{}", report.migration_bytes / 1024),
                format!("{}", report.full_rebuild_bytes / 1024),
                fmt_ms(report.pause_secs),
                fmt_ms(report.background_secs),
                fmt_ms(rebuild_wall),
            ]);
            // The modeled-wire comparison (the wall pause is bound by host
            // execution of the simulated merge kernels; on the modeled
            // PCIe the byte advantage is what transfers).
            let migration_modeled = link.transfer_time(report.migration_bytes as usize).secs();
            let rebuild_modeled = link.transfer_time(report.full_rebuild_bytes as usize).secs();
            json_rows.push(format!(
                concat!(
                    "    {{\"policy\": \"{}\", \"shards\": {}, ",
                    "\"skew_before\": {:.4}, \"skew_after\": {:.4}, ",
                    "\"migrated_edges\": {}, \"resident_edges\": {}, ",
                    "\"migration_bytes\": {}, \"full_rebuild_bytes\": {}, ",
                    "\"migration_modeled_secs\": {:.6}, ",
                    "\"rebuild_modeled_secs\": {:.6}, ",
                    "\"pause_secs\": {:.6}, \"background_secs\": {:.6}, ",
                    "\"rebuild_wall_secs\": {:.6}, ",
                    "\"pause_total_secs\": {:.6}, \"background_total_secs\": {:.6}, ",
                    "\"steady_enqueue_p99_us\": {}, \"reshard_enqueue_p99_us\": {}, ",
                    "\"reshard_enqueue_samples\": {}, \"final_edges\": {}}}"
                ),
                policy.name(),
                shards,
                before,
                after,
                report.migrated_edges,
                report.resident_edges,
                report.migration_bytes,
                report.full_rebuild_bytes,
                migration_modeled,
                rebuild_modeled,
                report.pause_secs,
                report.background_secs,
                rebuild_wall,
                stats.pause_secs,
                stats.background_secs,
                steady_p99,
                during.p99,
                during.count,
                final_edges,
            ));
            eprintln!(
                "elastic: {} × {shards} done (skew {before:.2} → {after:.2}, \
                 settle {:.1} ms + swap {:.1} ms)",
                policy.name(),
                quiesce_us as f64 / 1e3,
                resume_us as f64 / 1e3,
            );
        }
    }

    // Shard-count elasticity on the same stream: 4 → 2 → 8 mid-stream with
    // every update preserved (the integration proptest checks exactness;
    // here we record the migration economics of scale-in/scale-out).
    let resize_json = {
        let cluster = GraphCluster::spawn(
            ClusterConfig {
                flush_threshold: batch,
                ..Default::default()
            },
            &cfg.device_cfg,
            PartitionPolicy::VertexHash.build(nv, 4),
            stream.initial_edges(),
        );
        crate::feed_cluster_concurrently(&cluster, first_half, PRODUCERS);
        let live = spawn_live(&cluster, during_slice);
        let shrink = cluster.rebalance(Some(2)).expect("shrink to 2");
        for f in live {
            f.join().expect("live producer");
        }
        crate::feed_cluster_concurrently(&cluster, after_slice, PRODUCERS);
        let grow = cluster.rebalance(Some(8)).expect("grow to 8");
        let edges = cluster.snapshot().num_edges();
        drop(cluster.shutdown());
        rows.push(vec![
            "resize 4→2→8".to_string(),
            "2,8".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{}", shrink.migrated_edges + grow.migrated_edges),
            format!("{}", grow.resident_edges),
            format!("{}", (shrink.migration_bytes + grow.migration_bytes) / 1024),
            format!("{}", grow.full_rebuild_bytes / 1024),
            fmt_ms(shrink.pause_secs + grow.pause_secs),
            fmt_ms(shrink.background_secs + grow.background_secs),
            "-".to_string(),
        ]);
        format!(
            concat!(
                "  \"resize\": {{\"path\": [4, 2, 8], \"shrink_moved\": {}, ",
                "\"grow_moved\": {}, \"final_edges\": {}, ",
                "\"pause_secs\": {:.6}, \"background_secs\": {:.6}}}"
            ),
            shrink.migrated_edges,
            grow.migrated_edges,
            edges,
            shrink.pause_secs + grow.pause_secs,
            shrink.background_secs + grow.background_secs,
        )
    };

    emit(
        "elastic",
        "Elastic cluster: copy-on-write rebalance under live ingest vs accumulated \
         routing skew (Graph500, 4 producers, 1% flush batches)",
        &[
            "Policy", "Shards", "SkewBefore", "SkewAfter", "Moved", "Resident", "MoveKB",
            "RebuildKB", "PauseMs", "BgMs", "RebuildMs",
        ],
        &rows,
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"elastic\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"seed\": {},\n",
            "  \"num_vertices\": {},\n",
            "  \"streamed_updates\": {},\n",
            "  \"producers\": {},\n",
            "  \"flush_batch\": {},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "{}\n",
            "}}\n"
        ),
        crate::report::json_escape(&stream.name),
        cfg.scale,
        cfg.seed,
        nv,
        tail.len(),
        PRODUCERS,
        batch,
        json_rows.join(",\n"),
        resize_json,
    );
    if let Err(e) = crate::report::save_json("BENCH_elastic", &json) {
        eprintln!("(json save failed for elastic: {e})");
    }
}

/// Ablation: merge tiers, density thresholds and scan variants.
pub fn ablation(cfg: &ExpConfig) {
    let stream = generate(DatasetKind::Graph500, cfg.scale, cfg.seed);
    let batch = stream.slide_batch_size(0.01);

    // (a) GPMA+ merge tiers.
    let mut rows = Vec::new();
    for (label, tier_max) in [
        ("warp/block+device (default)", gpma_core::gpma_plus::SMALL_WINDOW_MAX),
        ("device tier only", 0usize),
        ("warp/block only (no device tier)", usize::MAX),
    ] {
        let dev = Device::new(cfg.device_cfg.clone());
        let mut g = GpmaPlus::build(&dev, stream.num_vertices, stream.initial_edges())
            .with_tier_max(tier_max);
        let mut t = 0.0;
        let mut slides = 0;
        for b in stream.sliding(batch).take(cfg.max_slides) {
            let (_, dt) = dev.timed(|d| {
                g.update_batch_lazy(d, &b);
            });
            t += dt.secs();
            slides += 1;
        }
        rows.push(vec![label.to_string(), fmt_ms(t / slides.max(1) as f64)]);
    }
    emit(
        "ablation_tiers",
        "Ablation: GPMA+ merge tier strategy (1% batches, Graph500)",
        &["Tiers", "UpdateMs"],
        &rows,
    );

    // (b) Theorem 1: K-scaling of GPMA+ updates.
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16, 32] {
        let dev = Device::new(cfg.device_cfg.clone().with_sms(k));
        let mut g = GpmaPlus::build(&dev, stream.num_vertices, stream.initial_edges());
        let mut t = 0.0;
        let mut slides = 0;
        for b in stream.sliding(batch).take(cfg.max_slides) {
            let (_, dt) = dev.timed(|d| {
                g.update_batch_lazy(d, &b);
            });
            t += dt.secs();
            slides += 1;
        }
        rows.push(vec![format!("{k}"), fmt_ms(t / slides.max(1) as f64)]);
    }
    emit(
        "ablation_k",
        "Ablation: GPMA+ update time vs compute units K (Theorem 1)",
        &["K(SMs)", "UpdateMs"],
        &rows,
    );

    // (c) GPMA lock-conflict sensitivity to batch locality.
    let sorted = stream.sorted_by_key();
    let mut rows = Vec::new();
    for (label, s) in [("random", &stream), ("clustered", &sorted)] {
        let dev = Device::new(cfg.device_cfg.clone());
        let mut g = Gpma::build(&dev, s.num_vertices, s.initial_edges());
        let b = s.sliding(batch.min(2048)).next().unwrap();
        let (st, t) = dev.timed(|d| g.update_batch(d, &b));
        rows.push(vec![
            label.to_string(),
            fmt_ms(t.secs()),
            format!("{}", st.rounds),
            format!("{}", st.aborts),
        ]);
    }
    emit(
        "ablation_conflicts",
        "Ablation: GPMA lock conflicts vs update locality",
        &["BatchLocality", "UpdateMs", "Rounds", "Aborts"],
        &rows,
    );
}

// ----------------------------------------------------------------------
// audit — run the deep invariant validators against live state
// ----------------------------------------------------------------------

/// `repro -- audit`: exercise every `gpma_core::audit` validator mid-stream
/// — the GPMA+ state after each slide of a sliding-window stream, the delta
/// publication ring after each epoch, every shipped partition policy, a
/// migration plan between two plans, and a coordinated cluster cut.
pub fn audit(cfg: &ExpConfig) {
    use gpma_cluster::{ClusterConfig, GraphCluster, PartitionPolicy};
    use gpma_core::delta::{DeltaLog, SnapshotDelta};
    use gpma_core::migration::MigrationPlan;
    use gpma_core::multi::{DegreePartition, PartitionEpoch};
    use gpma_graph::Edge;
    use std::sync::Arc;

    let stream = generate(DatasetKind::Graph500, cfg.scale, cfg.seed);
    let nv = stream.num_vertices;
    let batch = stream.slide_batch_size(0.01).max(1);
    let slides = (cfg.max_slides.max(1) * 4).min(16);
    let mut rows = Vec::new();

    // GPMA+ structural/density audit after every sliding-window slide, and
    // the delta ring contract after every published epoch.
    let dev = Device::new(cfg.device_cfg.clone());
    let mut g = GpmaPlus::build(&dev, nv, stream.initial_edges());
    g.validate().expect("initial GPMA+ state audits clean");
    let mut log = DeltaLog::new(8);
    let mut epoch = 0u64;
    for b in stream.sliding(batch).take(slides) {
        g.update_batch(&dev, &b);
        g.validate()
            .unwrap_or_else(|e| panic!("epoch {}: {e}", epoch + 1));
        epoch += 1;
        log.push(Arc::new(SnapshotDelta::from_batch(epoch, &b)));
        log.validate()
            .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
    }
    rows.push(vec![
        "GpmaPlus::validate".into(),
        format!("{} epochs", epoch),
        "ok".into(),
    ]);
    rows.push(vec![
        "DeltaLog::validate".into(),
        format!("{} epochs, ring of {}", epoch, log.capacity()),
        "ok".into(),
    ]);

    // Every shipped partition policy plus a degree-aware plan is total and
    // consistent over the vertex space.
    let mut plans: Vec<Arc<dyn gpma_core::multi::Partitioner>> = PartitionPolicy::ALL
        .iter()
        .map(|p| p.build(nv, 4))
        .collect();
    plans.push(Arc::new(DegreePartition::from_edges(
        nv,
        stream.initial_edges(),
        4,
    )));
    let num_plans = plans.len();
    for plan in &plans {
        let name = plan.name().to_string();
        PartitionEpoch::new(plan.clone())
            .validate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    rows.push(vec![
        "PartitionEpoch::validate".into(),
        format!("{num_plans} plans x {nv} vertices"),
        "ok".into(),
    ]);

    // A migration plan between the first two policies equals the owner-diff.
    let old_plan = &plans[0];
    let new_plan = &plans[1];
    let mut per_shard: Vec<Vec<Edge>> = vec![Vec::new(); old_plan.num_shards()];
    for e in stream.initial_edges() {
        per_shard[old_plan.shard_of_edge(e.src, e.dst)].push(*e);
    }
    let plan = MigrationPlan::compute(&per_shard, &**new_plan);
    plan.validate(&per_shard, &**new_plan)
        .expect("migration plan matches the owner-diff");
    rows.push(vec![
        "MigrationPlan::validate".into(),
        format!(
            "{} moved, {} resident",
            plan.moved_edges(),
            plan.resident_edges()
        ),
        "ok".into(),
    ]);

    // A coordinated cluster cut is consistent with its shard snapshots.
    let cluster = GraphCluster::spawn(
        ClusterConfig {
            flush_threshold: batch,
            ..Default::default()
        },
        &cfg.device_cfg,
        PartitionPolicy::VertexHash.build(nv, 4),
        stream.initial_edges(),
    );
    let h = cluster.handle();
    for b in stream.sliding(batch).take(2) {
        h.ingest(b).expect("cluster alive");
    }
    let snap = cluster.audit_cut().expect("cluster cut audits clean");
    rows.push(vec![
        "GraphCluster::audit_cut".into(),
        format!("cut {}, {} edges", snap.cut(), snap.num_edges()),
        "ok".into(),
    ]);
    drop(cluster.shutdown());

    emit(
        "audit",
        "Audit: deep invariant validators over live state",
        &["Validator", "Coverage", "Result"],
        &rows,
    );
}

// ----------------------------------------------------------------------
// Recovery — durable checkpoints, failover and follower replicas
// ----------------------------------------------------------------------

/// `recovery`: three measurements of the durability layer. (a) Crash
/// recovery cost vs the checkpoint's trailing delta-chain length — a longer
/// chain makes checkpoints cheaper to take but a restart pays decode plus
/// chain replay plus respawn. (b) A live cluster failover: a `FaultPlan`
/// kills a shard worker mid-stream and the `RecoveryStats` counters report
/// what the respawn cost. (c) Follower staleness vs read throughput as the
/// replica's sync cadence stretches — the replication trade every read-only
/// follower makes.
pub fn recovery(cfg: &ExpConfig) {
    use gpma_cluster::{
        ClusterConfig, FaultPlan, GraphCluster, MemoryCheckpointStore, PartitionPolicy,
        RecoveryPolicy,
    };
    use gpma_core::checkpoint::Checkpoint;
    use gpma_graph::Edge;
    use gpma_service::{ServiceConfig, StreamingService};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let stream = generate(DatasetKind::Graph500, cfg.scale, cfg.seed);
    let nv = stream.num_vertices;
    let batch = stream.slide_batch_size(0.01).max(1);
    let tail = &stream.edges[stream.initial_size()..];
    assert!(!tail.is_empty(), "recovery needs a streamed tail");

    // One flush-sized update batch, cycling over the streamed tail and
    // re-weighting so repeated passes still change state (upserts).
    let step_batch = |step: usize| -> UpdateBatch {
        let mut b = UpdateBatch::default();
        for i in 0..batch {
            let e = tail[(step * batch + i) % tail.len()];
            b.insertions
                .push(Edge::weighted(e.src, e.dst, (step * batch + i + 1) as u64));
        }
        b
    };

    // (a) Recovery time vs delta-chain length. The leader publishes its
    // full snapshot as rarely as the ring allows, so the checkpoint's chain
    // grows with the stream; we then kill the worker and measure the whole
    // recovery path: decode the durable bytes, replay the chain, respawn.
    let chain_lens: &[usize] = if cfg.max_slides <= 1 {
        &[0, 8, 32]
    } else {
        &[0, 16, 64, 256]
    };
    let mut rows = Vec::new();
    let mut chain_json: Vec<String> = Vec::new();
    for &len in chain_lens {
        let cap = (2 * len).max(4);
        let svc_cfg = ServiceConfig {
            delta_log_capacity: cap,
            snapshot_interval: cap,
            ..ServiceConfig::default()
        };
        let dev = Device::new(cfg.device_cfg.clone());
        let sys = DynamicGraphSystem::new(dev, nv, stream.initial_edges(), batch);
        let svc = StreamingService::spawn(svc_cfg.clone(), sys);
        let h = svc.handle();
        for step in 0..len {
            h.ingest(step_batch(step)).expect("service alive");
        }
        drop(h);
        // Serialize behind the queued batches without forcing a fresh
        // snapshot publication (a barrier would collapse the chain).
        svc.ad_hoc(|_| ()).expect("service alive");

        let ckpt = svc.checkpoint();
        let t_enc = Instant::now();
        let bytes = ckpt.encode();
        let encode_secs = t_enc.elapsed().as_secs_f64();

        svc.inject_failure().expect("fault injection lands");
        let t_rec = Instant::now();
        let durable = Checkpoint::decode(&bytes).expect("durable bytes decode");
        let fresh = StreamingService::spawn_from_checkpoint(
            svc_cfg,
            Device::new(cfg.device_cfg.clone()),
            &durable,
            batch,
        );
        let snap = fresh.barrier().expect("respawned service alive");
        let recover_secs = t_rec.elapsed().as_secs_f64();
        assert_eq!(
            snap.edges(),
            durable.restore().edges(),
            "respawned service serves exactly the checkpointed state"
        );
        drop(fresh.shutdown());
        drop(svc.shutdown());

        rows.push(vec![
            format!("{}", ckpt.chain_len()),
            format!("{}", snap.num_edges()),
            format!("{}", bytes.len() / 1024),
            fmt_ms(encode_secs),
            fmt_ms(recover_secs),
        ]);
        chain_json.push(format!(
            concat!(
                "    {{\"chain_len\": {}, \"edges\": {}, \"checkpoint_bytes\": {}, ",
                "\"encode_secs\": {:.6}, \"recover_secs\": {:.6}}}"
            ),
            ckpt.chain_len(),
            snap.num_edges(),
            bytes.len(),
            encode_secs,
            recover_secs,
        ));
        eprintln!(
            "recovery: chain {} recovered in {:.2} ms",
            ckpt.chain_len(),
            recover_secs * 1e3
        );
    }
    emit(
        "recovery",
        "Recovery time vs checkpointed delta-chain length (Graph500, kill + respawn)",
        &["ChainLen", "Edges", "CkptKB", "EncodeMs", "RecoverMs"],
        &rows,
    );

    // (b) Cluster failover under a FaultPlan: one shard dies mid-stream,
    // the router detects it on the next forward and respawns it from the
    // latest checkpoint + delta ring + replay log.
    let failover_json = {
        let n_updates = (batch * 8 * cfg.max_slides.max(1)).min(tail.len());
        let store = Arc::new(MemoryCheckpointStore::new());
        let cluster = GraphCluster::spawn(
            ClusterConfig {
                flush_threshold: batch,
                recovery: Some(RecoveryPolicy {
                    store: store.clone(),
                    checkpoint_every_cuts: 1,
                }),
                fault: Some(FaultPlan {
                    kill_shard: 1,
                    after_routed_updates: (n_updates / 2) as u64,
                    during_reshard: false,
                }),
                ..Default::default()
            },
            &cfg.device_cfg,
            PartitionPolicy::VertexHash.build(nv, 4),
            stream.initial_edges(),
        );
        let h = cluster.handle();
        for (i, e) in tail[..n_updates].iter().enumerate() {
            h.insert(*e).expect("cluster alive");
            if i == n_updates / 4 {
                // A mid-stream cut so checkpoints + delta chains exist
                // before the fault fires.
                cluster.epoch_cut().expect("cluster alive");
            }
        }
        let snap = cluster.epoch_cut().expect("cluster alive");
        let final_edges = snap.num_edges();
        let report = cluster.shutdown();
        let rs = report.metrics.recovery_stats();
        assert!(rs.recoveries >= 1, "the fault plan must have fired");
        eprintln!(
            "recovery: failover x{} in {:.2} ms avg ({} updates replayed, {} ckpts, {} B)",
            rs.recoveries,
            rs.avg_recovery_secs * 1e3,
            rs.replayed_updates,
            rs.checkpoints_taken,
            rs.checkpoint_bytes,
        );
        format!(
            concat!(
                "  \"failover\": {{\"shards\": 4, \"streamed_updates\": {}, ",
                "\"recoveries\": {}, \"recovery_secs\": {:.6}, ",
                "\"replayed_deltas\": {}, \"replayed_updates\": {}, ",
                "\"snapshot_fallbacks\": {}, \"checkpoints_taken\": {}, ",
                "\"checkpoint_bytes\": {}, \"final_edges\": {}}}"
            ),
            n_updates,
            rs.recoveries,
            rs.recovery_secs,
            rs.replayed_deltas,
            rs.replayed_updates,
            rs.snapshot_fallbacks,
            rs.checkpoints_taken,
            rs.checkpoint_bytes,
            final_edges,
        )
    };

    // (c) Follower staleness vs read throughput: a producer thread streams
    // continuously while a read-only follower serves queries from local
    // state, syncing from the leader's delta ring every `sync_every` reads.
    let mut follower_rows = Vec::new();
    let mut follower_json: Vec<String> = Vec::new();
    {
        // Small fixed flush batches so leader epochs advance on the read
        // loop's timescale — otherwise every sync observes zero staleness.
        let fthresh = 64usize;
        let dev = Device::new(cfg.device_cfg.clone());
        let sys = DynamicGraphSystem::new(dev, nv, stream.initial_edges(), fthresh);
        let svc = StreamingService::spawn(ServiceConfig::default(), sys);
        let stop = Arc::new(AtomicBool::new(false));
        let producer = {
            let h = svc.handle();
            let stop = stop.clone();
            let feed: Vec<Edge> = tail.to_vec();
            std::thread::spawn(move || {
                let mut step = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let mut b = UpdateBatch::default();
                    for i in 0..fthresh {
                        let n = step * fthresh + i;
                        let e = feed[n % feed.len()];
                        b.insertions.push(Edge::weighted(e.src, e.dst, (n + 1) as u64));
                    }
                    if h.ingest(b).is_err() {
                        return;
                    }
                    step += 1;
                }
            })
        };
        let reads = if cfg.max_slides <= 1 { 2_000usize } else { 10_000 };
        for &sync_every in &[1usize, 8, 64, 512] {
            let mut follower = svc.spawn_follower();
            let t0 = Instant::now();
            for i in 0..reads {
                if i % sync_every == 0 {
                    follower.sync(&svc);
                }
                // A full-scan aggregate (total edge weight) — the analytic
                // read a replica typically serves.
                std::hint::black_box(
                    follower.query(|s| s.edges().iter().map(|e| e.weight).sum::<u64>()),
                );
            }
            let wall = t0.elapsed().as_secs_f64();
            let stats = follower.stats();
            follower_rows.push(vec![
                format!("{sync_every}"),
                format!("{reads}"),
                format!("{:.0}", reads as f64 / wall.max(1e-12)),
                format!("{:.2}", stats.avg_staleness),
                format!("{}", stats.max_staleness),
                format!("{}", stats.rebases),
            ]);
            follower_json.push(format!(
                concat!(
                    "    {{\"sync_every\": {}, \"reads\": {}, \"wall_secs\": {:.6}, ",
                    "\"reads_per_sec\": {:.1}, \"avg_staleness\": {:.3}, ",
                    "\"max_staleness\": {}, \"deltas_applied\": {}, \"rebases\": {}}}"
                ),
                sync_every,
                reads,
                wall,
                reads as f64 / wall.max(1e-12),
                stats.avg_staleness,
                stats.max_staleness,
                stats.deltas_applied,
                stats.rebases,
            ));
        }
        stop.store(true, Ordering::Relaxed);
        producer.join().expect("producer thread");
        drop(svc.shutdown());
    }
    emit(
        "recovery_follower",
        "Follower staleness vs read throughput (reads served locally, sync every k reads)",
        &[
            "SyncEvery",
            "Reads",
            "Reads/s",
            "AvgStaleEpochs",
            "MaxStale",
            "Rebases",
        ],
        &follower_rows,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"recovery\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"seed\": {},\n",
            "  \"num_vertices\": {},\n",
            "  \"flush_batch\": {},\n",
            "  \"chain\": [\n{}\n  ],\n",
            "{},\n",
            "  \"follower\": [\n{}\n  ]\n",
            "}}\n"
        ),
        crate::report::json_escape(&stream.name),
        cfg.scale,
        cfg.seed,
        nv,
        batch,
        chain_json.join(",\n"),
        failover_json,
        follower_json.join(",\n"),
    );
    if let Err(e) = crate::report::save_json("BENCH_recovery", &json) {
        eprintln!("(json save failed for recovery: {e})");
    }
}

// ----------------------------------------------------------------------
// obs — unified tracing, latency histograms and stage telemetry
// ----------------------------------------------------------------------

/// The observability experiment (DESIGN.md §13):
///
/// **(a) Instrumentation overhead** — the same single-service ingest
/// workload runs with the telemetry registry enabled and disabled
/// (runtime-inert spans: no clock reads, no samples); the wall-clock delta
/// is the cost of the measurement plane itself. Target: < 2 %.
///
/// **(b) Steady vs chaos ingest latency** — a 4-shard cluster under
/// multi-producer per-edge traffic, first undisturbed, then with a
/// mid-stream grow reshard (4 → 6) and a mid-stream shard kill + recovery.
/// Reported: client ingest p50/p99 per scenario, the
/// `ingest.reshard` histogram (sends completing while migration held the
/// router), and the full per-stage breakdown (flush, route/forward,
/// cut barrier/publish, reshard quiesce/migrate/resume, recovery
/// restore/replay, checkpoint) from the cluster registry.
pub fn obs(cfg: &ExpConfig) {
    use gpma_cluster::{
        ClusterConfig, GraphCluster, MemoryCheckpointStore, PartitionPolicy, RecoveryPolicy,
    };
    use gpma_graph::Edge;
    use gpma_obs::Stage;
    use gpma_service::{ServiceConfig, StreamingService};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let stream = generate(DatasetKind::Graph500, cfg.scale, cfg.seed);
    let nv = stream.num_vertices;
    let batch = stream.slide_batch_size(0.01).max(1);
    let tail = &stream.edges[stream.initial_size()..];
    assert!(!tail.is_empty(), "obs needs a streamed tail");

    // (a) Overhead: flush-sized batches + per-flush spans, measured with
    // the registry on and off (interleaved best-of-N so scheduler noise
    // hits both arms equally).
    let slides = if cfg.max_slides <= 1 {
        8
    } else {
        8 * cfg.max_slides
    };
    let run_once = |metered: bool| -> f64 {
        let dev = Device::new(cfg.device_cfg.clone());
        let sys = DynamicGraphSystem::new(dev, nv, stream.initial_edges(), batch);
        let svc = StreamingService::spawn(ServiceConfig::default(), sys);
        svc.obs().set_enabled(metered);
        let h = svc.handle();
        let t0 = Instant::now();
        for step in 0..slides {
            let mut b = UpdateBatch::default();
            for i in 0..batch {
                let n = step * batch + i;
                let e = tail[n % tail.len()];
                b.insertions
                    .push(Edge::weighted(e.src, e.dst, (n + 1) as u64));
            }
            h.ingest(b).expect("service alive");
        }
        svc.barrier().expect("service alive");
        let wall = t0.elapsed().as_secs_f64();
        drop(svc.shutdown());
        wall
    };
    run_once(true); // warm-up: page in the dataset + code paths
    let (mut on, mut off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        off = off.min(run_once(false));
        on = on.min(run_once(true));
    }
    let overhead_pct = (on - off) / off.max(1e-12) * 100.0;
    eprintln!(
        "obs: overhead {overhead_pct:+.2}% (enabled {:.2} ms vs disabled {:.2} ms, {slides} flushes)",
        on * 1e3,
        off * 1e3,
    );

    // (b) Steady vs chaos: the same producer pattern, one quiet cluster and
    // one that reshards and loses a shard mid-stream.
    let cuts_per_phase = if cfg.max_slides <= 1 { 2 } else { 4 };
    let run_cluster = |chaos: bool| -> (GraphCluster, u64) {
        let store = Arc::new(MemoryCheckpointStore::new());
        let cluster = GraphCluster::spawn(
            ClusterConfig {
                flush_threshold: batch.clamp(16, 1024),
                recovery: Some(RecoveryPolicy {
                    store,
                    checkpoint_every_cuts: 2,
                }),
                ..Default::default()
            },
            &cfg.device_cfg,
            PartitionPolicy::VertexHash.build(nv, 4),
            stream.initial_edges(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let h = cluster.handle();
                let stop = stop.clone();
                let feed: Vec<Edge> = tail.to_vec();
                std::thread::spawn(move || {
                    let mut n = p;
                    while !stop.load(Ordering::Relaxed) {
                        let e = feed[n % feed.len()];
                        if h
                            .insert(Edge::weighted(e.src, e.dst, (n + 1) as u64))
                            .is_err()
                        {
                            return;
                        }
                        n += 4;
                    }
                })
            })
            .collect();
        // Control activity paces the phases: each cut forwards + barriers,
        // so real producer traffic flows between the control points.
        for _ in 0..cuts_per_phase {
            cluster.epoch_cut().expect("cluster alive");
        }
        if chaos {
            cluster
                .reshard(PartitionPolicy::VertexHash.build(nv, 6))
                .expect("mid-stream grow reshard");
            for _ in 0..cuts_per_phase {
                cluster.epoch_cut().expect("cluster alive");
            }
            cluster.kill_shard(1).expect("cluster alive");
            // The next cuts detect the corpse and recover it.
            for _ in 0..cuts_per_phase {
                cluster.epoch_cut().expect("cluster alive");
            }
        }
        stop.store(true, Ordering::Relaxed);
        for p in producers {
            p.join().expect("producer thread");
        }
        let updates = cluster
            .obs()
            .hist(Stage::IngestEnqueue)
            .snapshot()
            .count;
        (cluster, updates)
    };

    let (steady, steady_updates) = run_cluster(false);
    let steady_ingest = steady.obs().hist(Stage::IngestEnqueue).snapshot();
    drop(steady.shutdown());

    let (chaos, chaos_updates) = run_cluster(true);
    let chaos_ingest = chaos.obs().hist(Stage::IngestEnqueue).snapshot();
    let under_reshard = chaos.obs().hist(Stage::IngestReshard).snapshot();
    eprintln!("{}", chaos.metrics_report().expect("cluster alive"));
    let telemetry_json = chaos.obs_dump();
    let chaos_report = chaos.shutdown();
    let rs = chaos_report.metrics.recovery_stats();

    emit(
        "obs",
        "Ingest latency under chaos (4 shards; grow reshard + shard kill mid-stream)",
        &["Scenario", "Updates", "p50us", "p99us", "Maxus"],
        &[
            vec![
                "steady".into(),
                format!("{steady_updates}"),
                format!("{}", steady_ingest.p50),
                format!("{}", steady_ingest.p99),
                format!("{}", steady_ingest.max),
            ],
            vec![
                "chaos".into(),
                format!("{chaos_updates}"),
                format!("{}", chaos_ingest.p50),
                format!("{}", chaos_ingest.p99),
                format!("{}", chaos_ingest.max),
            ],
            vec![
                "under-reshard".into(),
                format!("{}", under_reshard.count),
                format!("{}", under_reshard.p50),
                format!("{}", under_reshard.p99),
                format!("{}", under_reshard.max),
            ],
        ],
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"obs\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"seed\": {},\n",
            "  \"num_vertices\": {},\n",
            "  \"flush_batch\": {},\n",
            "  \"overhead\": {{\"flushes\": {}, \"enabled_secs\": {:.6}, ",
            "\"disabled_secs\": {:.6}, \"overhead_pct\": {:.3}}},\n",
            "  \"steady\": {{\"updates\": {}, \"ingest_p50_us\": {}, ",
            "\"ingest_p99_us\": {}, \"ingest_max_us\": {}}},\n",
            "  \"chaos\": {{\"updates\": {}, \"reshards\": 1, \"recoveries\": {}, ",
            "\"ingest_p50_us\": {}, \"ingest_p99_us\": {}, \"ingest_max_us\": {}, ",
            "\"under_reshard\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, ",
            "\"max_us\": {}}}}},\n",
            "  \"telemetry\": {}",
            "}}\n"
        ),
        crate::report::json_escape(&stream.name),
        cfg.scale,
        cfg.seed,
        nv,
        batch,
        slides,
        on,
        off,
        overhead_pct,
        steady_updates,
        steady_ingest.p50,
        steady_ingest.p99,
        steady_ingest.max,
        chaos_updates,
        rs.recoveries,
        chaos_ingest.p50,
        chaos_ingest.p99,
        chaos_ingest.max,
        under_reshard.count,
        under_reshard.p50,
        under_reshard.p99,
        under_reshard.max,
        telemetry_json,
    );
    if let Err(e) = crate::report::save_json("BENCH_obs", &json) {
        eprintln!("(json save failed for obs: {e})");
    }
}

// ----------------------------------------------------------------------
// serving — multi-tenant cached query serving over live ingest
// ----------------------------------------------------------------------

/// The query-serving experiment (DESIGN.md §14):
///
/// **(a) Cache value under a mixed read/write load** — three unlimited
/// tenants run an interleaved workload (each round: one 4-edge ingest
/// batch, six queries across the typed vocabulary — a ≥50 % read mix by
/// operation count) against a [`gpma_serving::QueryServer`] with the
/// delta-maintained cache on and off. Reported: client-observed query
/// p50/p99, the cache hit rate, and the cached/uncached p99 ratio. The
/// cache should win p99 decisively: the expensive tail (PageRank, CC) is
/// served from patched/refilled entries instead of recomputed per query.
///
/// **(b) Tenant isolation under an over-quota abuser** — two well-behaved
/// tenants run a paced query load while an abuser tenant floods
/// PageRank queries far beyond its token-bucket quota from two threads.
/// Admission sheds the overflow synchronously
/// ([`gpma_serving::Rejected::QuotaExceeded`]) without blocking, so the
/// victims' p99 must stay within 2× of an abuser-free baseline run.
pub fn serving(cfg: &ExpConfig) {
    use gpma_graph::Edge;
    use gpma_service::{ServiceConfig, StreamingService};
    use gpma_serving::{
        PageRankParams, Query, QueryServer, Rejected, ServingConfig, ServingMetrics, TenantConfig,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let stream = generate(DatasetKind::Graph500, cfg.scale, cfg.seed);
    let nv = stream.num_vertices;
    let tail = &stream.edges[stream.initial_size()..];
    assert!(!tail.is_empty(), "serving needs a streamed tail");
    let probe = tail[0];

    /// Nearest-rank percentile over an unsorted latency sample.
    fn pctl(lat_us: &mut [u64], p: f64) -> u64 {
        if lat_us.is_empty() {
            return 0;
        }
        lat_us.sort_unstable();
        lat_us[((lat_us.len() - 1) as f64 * p) as usize]
    }

    // Bench-friendly PageRank: the point is relative cached/uncached cost,
    // not convergence to 1e-9.
    let pr = PageRankParams {
        damping: 0.85,
        epsilon: 1e-6,
        max_iters: 20,
    };
    let rounds = 40 * cfg.max_slides.max(1);
    // The repeating query set: one of each kind, so every round mixes
    // engine-refilled (BFS/CC), patched (exists/neighbors/degree) and
    // invalidate-always (PageRank) cache behavior.
    let query_set = [
        Query::Bfs { src: 0 },
        Query::Cc,
        Query::PageRank { top_k: 8 },
        Query::Degree { v: probe.src },
        Query::EdgeExists {
            u: probe.src,
            v: probe.dst,
        },
        Query::Neighbors { v: probe.src },
    ];
    let round_batch = |round: usize| -> UpdateBatch {
        let mut b = UpdateBatch::default();
        for i in 0..4 {
            let e = tail[(round * 4 + i) % tail.len()];
            b.insertions
                .push(Edge::weighted(e.src, e.dst, (round * 4 + i + 1) as u64));
        }
        if round.is_multiple_of(4) && round >= 8 {
            // Re-delete something inserted two epochs back so deletions
            // exercise the patch path too.
            b.deletions.push(tail[(round - 8) * 4 % tail.len()]);
        }
        b
    };

    // (a) Mixed load, cache on vs off.
    let run_mixed = |cached: bool| -> (Vec<u64>, ServingMetrics) {
        let dev = Device::new(cfg.device_cfg.clone());
        // Small flush threshold: epochs publish every ~2 rounds, so the
        // cache is continuously invalidated/patched, not just warm.
        let sys = DynamicGraphSystem::new(dev, nv, stream.initial_edges(), 8);
        let svc = Arc::new(StreamingService::spawn(ServiceConfig::default(), sys));
        let server = QueryServer::spawn(
            Arc::clone(&svc),
            ServingConfig {
                workers: 3,
                queue_capacity: 256,
                default_deadline: Duration::from_secs(60),
                cache: cached,
                bfs_roots: vec![0],
                pagerank: pr,
                tenants: vec![
                    TenantConfig::unlimited("analytics"),
                    TenantConfig::unlimited("dashboard"),
                    TenantConfig::unlimited("adhoc"),
                ],
            },
        );
        let mut lat_us = Vec::with_capacity(rounds * query_set.len());
        for round in 0..rounds {
            let writer = (round % 3) as u32;
            let _ = server.ingest(writer, round_batch(round));
            let tickets: Vec<_> = query_set
                .iter()
                .enumerate()
                .filter_map(|(i, &q)| {
                    let tenant = ((round + i) % 3) as u32;
                    let t0 = Instant::now();
                    server.submit(tenant, q).ok().map(|t| (t0, t))
                })
                .collect();
            for (t0, t) in tickets {
                if t.wait().is_ok() {
                    lat_us.push(t0.elapsed().as_micros() as u64);
                }
            }
        }
        let metrics = server.shutdown();
        drop(
            Arc::into_inner(svc)
                .expect("server released its backend handle")
                .shutdown(),
        );
        (lat_us, metrics)
    };

    let (mut cached_lat, cached_m) = run_mixed(true);
    let (mut uncached_lat, uncached_m) = run_mixed(false);
    let cached_tot = cached_m.totals();
    let uncached_tot = uncached_m.totals();
    let (c_p50, c_p99) = (pctl(&mut cached_lat, 0.50), pctl(&mut cached_lat, 0.99));
    let (u_p50, u_p99) = (pctl(&mut uncached_lat, 0.50), pctl(&mut uncached_lat, 0.99));
    let read_mix = cached_tot.completed() as f64
        / (cached_tot.completed() + cached_tot.ingested).max(1) as f64;
    let p99_speedup = u_p99 as f64 / (c_p99 as f64).max(1.0);
    eprintln!(
        "serving: mixed load {:.0}% reads, cache hit rate {:.1}%, p99 {}us cached vs {}us uncached ({p99_speedup:.2}x)",
        read_mix * 100.0,
        cached_tot.hit_rate() * 100.0,
        c_p99,
        u_p99,
    );

    // (b) Isolation: victims paced, abuser flooding past its quota.
    let rounds_iso = 30 * cfg.max_slides.max(1);
    let run_isolation = |with_abuser: bool| -> (Vec<u64>, ServingMetrics) {
        let dev = Device::new(cfg.device_cfg.clone());
        let sys = DynamicGraphSystem::new(dev, nv, stream.initial_edges(), 8);
        let svc = Arc::new(StreamingService::spawn(ServiceConfig::default(), sys));
        let server = Arc::new(QueryServer::spawn(
            Arc::clone(&svc),
            ServingConfig {
                workers: 2,
                queue_capacity: 64,
                default_deadline: Duration::from_secs(60),
                cache: true,
                bfs_roots: vec![0],
                pagerank: pr,
                tenants: vec![
                    TenantConfig::unlimited("dashboard"),
                    TenantConfig::unlimited("analytics"),
                    TenantConfig::new("abuser", 100.0, 0.0).with_bursts(10.0, 1.0),
                ],
            },
        ));
        let abuser = server.tenant_id("abuser").expect("registered tenant");
        let stop = Arc::new(AtomicBool::new(false));
        let flooders: Vec<_> = (0..if with_abuser { 2 } else { 0 })
            .map(|_| {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // Fire-and-forget: the shed path must stay
                        // synchronous and cheap; admitted tickets complete
                        // unobserved.
                        match server.submit(abuser, Query::PageRank { top_k: 8 }) {
                            Ok(_) | Err(Rejected::QuotaExceeded) => {}
                            Err(_) => return,
                        }
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        let mut lat_us = Vec::with_capacity(rounds_iso * 4);
        for round in 0..rounds_iso {
            let _ = server.ingest(0, round_batch(round));
            for (i, &q) in query_set.iter().enumerate().filter(|(i, _)| *i != 2) {
                let tenant = ((round + i) % 2) as u32;
                let t0 = Instant::now();
                if let Ok(t) = server.submit(tenant, q) {
                    if t.wait().is_ok() {
                        lat_us.push(t0.elapsed().as_micros() as u64);
                    }
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for f in flooders {
            f.join().expect("flooder thread");
        }
        let metrics = Arc::into_inner(server)
            .expect("flooders joined")
            .shutdown();
        drop(
            Arc::into_inner(svc)
                .expect("server released its backend handle")
                .shutdown(),
        );
        (lat_us, metrics)
    };

    let (mut base_lat, _base_m) = run_isolation(false);
    let (mut cont_lat, cont_m) = run_isolation(true);
    let (b_p50, b_p99) = (pctl(&mut base_lat, 0.50), pctl(&mut base_lat, 0.99));
    let (i_p50, i_p99) = (pctl(&mut cont_lat, 0.50), pctl(&mut cont_lat, 0.99));
    let abuser_m = cont_m.tenants[2].clone();
    let degradation = i_p99 as f64 / (b_p99 as f64).max(1.0);
    eprintln!(
        "serving: abuser shed {} of {} ({} admitted), victim p99 {}us vs {}us baseline ({degradation:.2}x)",
        abuser_m.rejected_quota, abuser_m.submitted, abuser_m.admitted, i_p99, b_p99,
    );
    if degradation > 2.0 {
        eprintln!("serving: WARNING victim p99 degraded more than 2x under abuse");
    }

    emit(
        "serving",
        "Multi-tenant query serving (mixed ingest+query load; quota abuse)",
        &["Scenario", "Queries", "p50us", "p99us", "HitRate", "Shed"],
        &[
            vec![
                "cached".into(),
                format!("{}", cached_tot.completed()),
                format!("{c_p50}"),
                format!("{c_p99}"),
                format!("{:.1}%", cached_tot.hit_rate() * 100.0),
                format!("{}", cached_tot.rejected()),
            ],
            vec![
                "uncached".into(),
                format!("{}", uncached_tot.completed()),
                format!("{u_p50}"),
                format!("{u_p99}"),
                format!("{:.1}%", uncached_tot.hit_rate() * 100.0),
                format!("{}", uncached_tot.rejected()),
            ],
            vec![
                "victims-baseline".into(),
                format!("{}", base_lat.len()),
                format!("{b_p50}"),
                format!("{b_p99}"),
                "-".into(),
                "0".into(),
            ],
            vec![
                "victims-abused".into(),
                format!("{}", cont_lat.len()),
                format!("{i_p50}"),
                format!("{i_p99}"),
                "-".into(),
                format!("{}", abuser_m.rejected_quota),
            ],
        ],
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"serving\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"seed\": {},\n",
            "  \"num_vertices\": {},\n",
            "  \"mixed\": {{\"read_mix\": {:.3}, \"p99_speedup\": {:.3},\n",
            "    \"cached\": {{\"queries\": {}, \"p50_us\": {}, \"p99_us\": {}, ",
            "\"hit_rate\": {:.4}, \"ingested\": {}}},\n",
            "    \"uncached\": {{\"queries\": {}, \"p50_us\": {}, \"p99_us\": {}, ",
            "\"hit_rate\": {:.4}, \"ingested\": {}}}}},\n",
            "  \"isolation\": {{\"baseline_p50_us\": {}, \"baseline_p99_us\": {}, ",
            "\"contended_p50_us\": {}, \"contended_p99_us\": {}, \"degradation\": {:.3},\n",
            "    \"abuser\": {{\"submitted\": {}, \"admitted\": {}, \"shed_quota\": {}}}}}\n",
            "}}\n"
        ),
        crate::report::json_escape(&stream.name),
        cfg.scale,
        cfg.seed,
        nv,
        read_mix,
        p99_speedup,
        cached_tot.completed(),
        c_p50,
        c_p99,
        cached_tot.hit_rate(),
        cached_tot.ingested,
        uncached_tot.completed(),
        u_p50,
        u_p99,
        uncached_tot.hit_rate(),
        uncached_tot.ingested,
        b_p50,
        b_p99,
        i_p50,
        i_p99,
        degradation,
        abuser_m.submitted,
        abuser_m.admitted,
        abuser_m.rejected_quota,
    );
    if let Err(e) = crate::report::save_json("BENCH_serving", &json) {
        eprintln!("(json save failed for serving: {e})");
    }
}

//! The three streaming applications (§6.3) runnable against any store, with
//! per-run timing in the store's native metric (wall vs simulated).

use gpma_analytics::{bfs_device, bfs_host, cc_device, cc_host, pagerank_device, pagerank_host};
use serde::{Deserialize, Serialize};

use crate::approaches::Store;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
/// The three evaluation applications of §6.3.
pub enum App {
    /// Breadth-first search.
    Bfs,
    /// Connected components (label propagation).
    ConnectedComponent,
    /// PageRank.
    PageRank,
}

impl App {
    /// All applications, in Figure 8-10 order.
    pub const ALL: [App; 3] = [App::Bfs, App::ConnectedComponent, App::PageRank];

    /// Display name used in tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            App::Bfs => "BFS",
            App::ConnectedComponent => "ConnectedComponent",
            App::PageRank => "PageRank",
        }
    }
}

/// Outcome of one analytic run: elapsed seconds plus a content digest used
/// for cross-approach consistency checks.
#[derive(Debug, Clone, Copy)]
pub struct AppRun {
    /// Run time: simulated device seconds, or modeled host seconds.
    pub seconds: f64,
    /// BFS: reached vertex count. CC: component count. PageRank: iterations.
    pub digest: u64,
}

/// Run `app` on `store` (device kernels for device stores, the reference
/// algorithms for CPU stores), timing it in the store's native metric.
pub fn run_app(app: App, store: &Store, root: u32) -> AppRun {
    if let Some(run) = store.with_device_view(|dev, view| {
        let (digest, t) = dev.timed(|d| match app {
            App::Bfs => {
                let dist = bfs_device(d, &view, root);
                dist.as_slice()
                    .iter()
                    .filter(|&&x| x != gpma_analytics::UNREACHED)
                    .count() as u64
            }
            App::ConnectedComponent => {
                let labels = cc_device(d, &view);
                gpma_analytics::component_count(labels.as_slice()) as u64
            }
            App::PageRank => {
                let pr = pagerank_device(
                    d,
                    &view,
                    gpma_analytics::DAMPING,
                    gpma_analytics::EPSILON,
                    gpma_analytics::MAX_ITERS,
                );
                pr.iterations as u64
            }
        });
        AppRun {
            seconds: t.secs(),
            digest,
        }
    }) {
        return run;
    }

    let g = store.host_graph().expect("store is neither device nor host");
    let t0 = std::time::Instant::now();
    let digest = match app {
        App::Bfs => bfs_host(g, root)
            .iter()
            .filter(|&&x| x != gpma_analytics::UNREACHED)
            .count() as u64,
        App::ConnectedComponent => gpma_analytics::component_count(&cc_host(g)) as u64,
        App::PageRank => pagerank_host(
            g,
            gpma_analytics::DAMPING,
            gpma_analytics::EPSILON,
            gpma_analytics::MAX_ITERS,
        )
        .iterations as u64,
    };
    AppRun {
        seconds: t0.elapsed().as_secs_f64(),
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approaches::{ApproachKind, Store};
    use gpma_graph::Edge;
    use gpma_sim::DeviceConfig;

    #[test]
    fn all_approaches_agree_on_digests() {
        // 0→1→2→3→4 chain plus 5↔6; 7 isolated.
        let edges: Vec<Edge> = [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (5, 6), (6, 5)]
            .iter()
            .map(|&(s, d)| Edge::new(s, d))
            .collect();
        for app in App::ALL {
            let mut digests = Vec::new();
            for kind in ApproachKind::ALL {
                let store = Store::build_with(kind, 8, &edges, DeviceConfig::deterministic());
                let run = run_app(app, &store, 0);
                digests.push((kind.name(), run.digest));
            }
            let first = digests[0].1;
            for (name, d) in &digests {
                assert_eq!(*d, first, "{name} disagrees on {}", app.name());
            }
        }
    }
}

//! Uniform wrappers over all six compared approaches (Table 1), exposing a
//! single `apply / run-analytic` interface to the experiment drivers.
//!
//! CPU approaches are measured in host wall-clock time; device approaches in
//! simulated device time (`gpma-sim` cost model). EXPERIMENTS.md discusses
//! why comparing those directly still reproduces the paper's *shapes*.

use gpma_analytics::view::{GpmaView, RebuildView};
use gpma_baselines::{AdjLists, PmaGraph, RebuildCsr, StingerGraph};
use gpma_core::{Gpma, GpmaPlus};
use gpma_graph::{Edge, UpdateBatch};
use gpma_sim::{Device, DeviceConfig};
use serde::{Deserialize, Serialize};

/// The compared approaches of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApproachKind {
    /// AdjLists (CPU).
    AdjLists,
    /// PMA (CPU).
    Pma,
    /// Stinger (CPU).
    Stinger,
    /// cuSparseCSR rebuild (GPU).
    CuSparseCsr,
    /// GPMA (GPU).
    Gpma,
    /// GPMA+ (GPU).
    GpmaPlus,
}

impl ApproachKind {
    /// Every compared approach, in Table 1 order.
    pub const ALL: [ApproachKind; 6] = [
        ApproachKind::AdjLists,
        ApproachKind::Pma,
        ApproachKind::Stinger,
        ApproachKind::CuSparseCsr,
        ApproachKind::Gpma,
        ApproachKind::GpmaPlus,
    ];

    /// The device-resident subset.
    pub const DEVICE: [ApproachKind; 3] = [
        ApproachKind::CuSparseCsr,
        ApproachKind::Gpma,
        ApproachKind::GpmaPlus,
    ];

    /// Display name used in tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ApproachKind::AdjLists => "AdjLists",
            ApproachKind::Pma => "PMA",
            ApproachKind::Stinger => "Stinger",
            ApproachKind::CuSparseCsr => "cuSparseCSR",
            ApproachKind::Gpma => "GPMA",
            ApproachKind::GpmaPlus => "GPMA+",
        }
    }

    /// Whether this approach runs on the (simulated) device.
    pub fn is_device(&self) -> bool {
        matches!(
            self,
            ApproachKind::CuSparseCsr | ApproachKind::Gpma | ApproachKind::GpmaPlus
        )
    }
}

/// An instantiated approach holding its store (and device, if any).
pub enum Store {
    /// AdjLists (CPU).
    AdjLists(AdjLists),
    /// PMA (CPU).
    Pma(PmaGraph),
    /// Stinger (CPU).
    Stinger(StingerGraph),
    /// cuSparseCSR (GPU): static CSR rebuilt on every batch.
    CuSparseCsr {
        /// The simulated device the CSR lives on.
        dev: Device,
        /// The rebuilt CSR.
        csr: RebuildCsr,
    },
    /// GPMA (GPU).
    Gpma {
        /// The simulated device the structure lives on.
        dev: Device,
        /// The GPMA structure.
        g: Gpma,
    },
    /// GPMA+ (GPU).
    GpmaPlus {
        /// The simulated device the structure lives on.
        dev: Device,
        // Boxed: GPMA+ carries reusable upload/level scratch, making it
        // much larger than the host-store variants.
        /// The GPMA+ structure.
        g: Box<GpmaPlus>,
    },
}

impl Store {
    /// Build the approach's store from the initial graph.
    pub fn build(kind: ApproachKind, num_vertices: u32, edges: &[Edge]) -> Store {
        Store::build_with(kind, num_vertices, edges, DeviceConfig::default())
    }

    /// [`Store::build`] with an explicit device configuration.
    pub fn build_with(
        kind: ApproachKind,
        num_vertices: u32,
        edges: &[Edge],
        cfg: DeviceConfig,
    ) -> Store {
        match kind {
            ApproachKind::AdjLists => Store::AdjLists(AdjLists::build(num_vertices, edges)),
            ApproachKind::Pma => Store::Pma(PmaGraph::build(num_vertices, edges)),
            ApproachKind::Stinger => Store::Stinger(StingerGraph::build(num_vertices, edges)),
            ApproachKind::CuSparseCsr => {
                let dev = Device::new(cfg);
                let csr = RebuildCsr::build(&dev, num_vertices, edges);
                Store::CuSparseCsr { dev, csr }
            }
            ApproachKind::Gpma => {
                let dev = Device::new(cfg);
                let g = Gpma::build(&dev, num_vertices, edges);
                Store::Gpma { dev, g }
            }
            ApproachKind::GpmaPlus => {
                let dev = Device::new(cfg);
                let g = Box::new(GpmaPlus::build(&dev, num_vertices, edges));
                Store::GpmaPlus { dev, g }
            }
        }
    }

    /// Which approach this store wraps.
    pub fn kind(&self) -> ApproachKind {
        match self {
            Store::AdjLists(_) => ApproachKind::AdjLists,
            Store::Pma(_) => ApproachKind::Pma,
            Store::Stinger(_) => ApproachKind::Stinger,
            Store::CuSparseCsr { .. } => ApproachKind::CuSparseCsr,
            Store::Gpma { .. } => ApproachKind::Gpma,
            Store::GpmaPlus { .. } => ApproachKind::GpmaPlus,
        }
    }

    /// Apply one update batch; returns seconds (wall-clock for CPU stores,
    /// simulated device time for GPU stores).
    pub fn apply(&mut self, batch: &UpdateBatch) -> f64 {
        match self {
            Store::AdjLists(g) => wall(|| g.update_batch(batch)),
            Store::Pma(g) => wall(|| g.update_batch(batch)),
            Store::Stinger(g) => wall(|| g.update_batch(batch)),
            Store::CuSparseCsr { dev, csr } => {
                let (_, t) = dev.timed(|d| csr.update_batch(d, batch));
                t.secs()
            }
            Store::Gpma { dev, g } => {
                let (_, t) = dev.timed(|d| {
                    g.update_batch(d, batch);
                });
                t.secs()
            }
            Store::GpmaPlus { dev, g } => {
                let (_, t) = dev.timed(|d| {
                    g.update_batch_lazy(d, batch);
                });
                t.secs()
            }
        }
    }

    /// Current live edge count (consistency checks between approaches).
    pub fn num_edges(&self) -> usize {
        match self {
            Store::AdjLists(g) => g.num_edges(),
            Store::Pma(g) => g.num_edges(),
            Store::Stinger(g) => g.num_edges(),
            Store::CuSparseCsr { csr, .. } => csr.num_edges(),
            Store::Gpma { g, .. } => g.storage.num_edges(),
            Store::GpmaPlus { g, .. } => g.storage.num_edges(),
        }
    }

    /// Run `f` with a device view when this is a device store.
    pub fn with_device_view<R>(
        &self,
        f: impl FnOnce(&Device, &dyn ErasedDeviceView) -> R,
    ) -> Option<R> {
        match self {
            Store::CuSparseCsr { dev, csr } => {
                let view = RebuildView::build(dev, csr);
                Some(f(dev, &view))
            }
            Store::Gpma { dev, g } => {
                let view = GpmaView::build(dev, &g.storage);
                Some(f(dev, &view))
            }
            Store::GpmaPlus { dev, g } => {
                let view = GpmaView::build(dev, &g.storage);
                Some(f(dev, &view))
            }
            _ => None,
        }
    }

    /// Host-graph access for CPU stores.
    pub fn host_graph(&self) -> Option<&dyn gpma_analytics::HostGraph> {
        match self {
            Store::AdjLists(g) => Some(g),
            Store::Pma(g) => Some(g),
            Store::Stinger(g) => Some(g),
            _ => None,
        }
    }
}

/// Object-safe re-statement of [`gpma_analytics::DeviceGraphView`] so the
/// harness can dispatch over store types at runtime.
pub trait ErasedDeviceView: Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> u32;
    /// Total slots, for edge-centric kernels that stride the whole array.
    fn num_slots(&self) -> usize;
    /// Slot range of row `v`.
    fn row_range(&self, lane: &mut gpma_sim::Lane, v: u32) -> std::ops::Range<usize>;
    /// Decode `slot` as `(src, dst, weight)`; `None` for gaps and guards.
    fn slot_entry(&self, lane: &mut gpma_sim::Lane, slot: usize) -> Option<(u32, u32, u64)>;
    /// Per-vertex out-degrees (device resident).
    fn degrees(&self) -> &gpma_sim::DeviceBuffer<u32>;
}

impl<T: gpma_analytics::DeviceGraphView> ErasedDeviceView for T {
    fn num_vertices(&self) -> u32 {
        gpma_analytics::DeviceGraphView::num_vertices(self)
    }
    fn num_slots(&self) -> usize {
        gpma_analytics::DeviceGraphView::num_slots(self)
    }
    fn row_range(&self, lane: &mut gpma_sim::Lane, v: u32) -> std::ops::Range<usize> {
        gpma_analytics::DeviceGraphView::row_range(self, lane, v)
    }
    fn slot_entry(&self, lane: &mut gpma_sim::Lane, slot: usize) -> Option<(u32, u32, u64)> {
        gpma_analytics::DeviceGraphView::slot_entry(self, lane, slot)
    }
    fn degrees(&self) -> &gpma_sim::DeviceBuffer<u32> {
        gpma_analytics::DeviceGraphView::degrees(self)
    }
}

/// `&dyn ErasedDeviceView` itself satisfies the analytics trait, closing the
/// loop so the generic kernels run unmodified on erased views.
impl gpma_analytics::DeviceGraphView for &dyn ErasedDeviceView {
    fn num_vertices(&self) -> u32 {
        (**self).num_vertices()
    }
    fn num_slots(&self) -> usize {
        (**self).num_slots()
    }
    fn row_range(&self, lane: &mut gpma_sim::Lane, v: u32) -> std::ops::Range<usize> {
        (**self).row_range(lane, v)
    }
    fn slot_entry(&self, lane: &mut gpma_sim::Lane, slot: usize) -> Option<(u32, u32, u64)> {
        (**self).slot_entry(lane, slot)
    }
    fn degrees(&self) -> &gpma_sim::DeviceBuffer<u32> {
        (**self).degrees()
    }
}

fn wall<R>(f: impl FnOnce() -> R) -> f64 {
    let t0 = std::time::Instant::now();
    let _ = f();
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(s, d)| Edge::new(s, d)).collect()
    }

    #[test]
    fn all_stores_apply_the_same_batch_identically() {
        let initial = edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let batch = UpdateBatch {
            insertions: edges(&[(0, 2), (3, 1)]),
            deletions: edges(&[(1, 2)]),
        };
        for kind in ApproachKind::ALL {
            let mut store = Store::build_with(kind, 4, &initial, DeviceConfig::deterministic());
            assert_eq!(store.num_edges(), 4, "{}", kind.name());
            let secs = store.apply(&batch);
            assert!(secs >= 0.0);
            assert_eq!(store.num_edges(), 5, "{} after batch", kind.name());
            assert_eq!(store.kind(), kind);
        }
    }

    #[test]
    fn device_views_available_only_for_device_stores() {
        let initial = edges(&[(0, 1)]);
        for kind in ApproachKind::ALL {
            let store = Store::build_with(kind, 2, &initial, DeviceConfig::deterministic());
            let has_view = store.with_device_view(|_, v| v.num_vertices()).is_some();
            assert_eq!(has_view, kind.is_device(), "{}", kind.name());
            assert_eq!(store.host_graph().is_some(), !kind.is_device());
        }
    }

    #[test]
    fn erased_view_runs_analytics() {
        let store = Store::build_with(
            ApproachKind::GpmaPlus,
            4,
            &edges(&[(0, 1), (1, 2), (2, 3)]),
            DeviceConfig::deterministic(),
        );
        let dist = store
            .with_device_view(|dev, view| gpma_analytics::bfs_device(dev, &view, 0).to_vec())
            .unwrap();
        assert_eq!(dist, vec![0, 1, 2, 3]);
    }
}

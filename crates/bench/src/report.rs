//! Plain-text table rendering and CSV export for the experiment drivers.
//! Every `repro` subcommand prints an aligned table (the "rows/series the
//! paper reports") and drops a CSV under `results/`.

use std::io::Write;
use std::path::Path;

/// Render an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let line = |cells: &[String], widths: &[usize]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        s.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&line(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Print the table and save it as CSV under `results/<name>.csv`.
pub fn emit(name: &str, title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
    if let Err(e) = save_csv(name, headers, rows) {
        eprintln!("(csv save failed for {name}: {e})");
    }
}

/// Write `results/<name>.csv`.
pub fn save_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        writeln!(f, "{}", escaped.join(","))?;
    }
    f.flush()?;
    println!("(saved results/{name}.csv)");
    Ok(())
}

/// Write pre-rendered JSON under `results/<name>.json` — the
/// machine-readable side of an experiment (the vendor set has no
/// `serde_json`, so drivers render with [`json_escape`] + `format!`).
pub fn save_json(name: &str, content: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, content)?;
    println!("(saved results/{name}.json)");
    Ok(())
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Milliseconds with adaptive precision.
pub fn fmt_ms(secs: f64) -> String {
    let ms = secs * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Throughput in million edges per second.
pub fn fmt_meps(edges: usize, secs: f64) -> String {
    if secs <= 0.0 {
        return "inf".into();
    }
    format!("{:.2}", edges as f64 / secs / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let rows = vec![
            vec!["a".into(), "100".into()],
            vec!["longer-name".into(), "2".into()],
        ];
        let s = render_table("T", &["name", "value"], &rows);
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // Header, separator, two rows, title.
        assert_eq!(lines.len(), 5);
        assert!(lines[4].starts_with("longer-name"));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_ms(0.5), "500");
        assert_eq!(fmt_ms(0.0015), "1.50");
        assert_eq!(fmt_ms(0.0000015), "0.0015");
        assert_eq!(fmt_meps(2_000_000, 1.0), "2.00");
        assert_eq!(fmt_meps(1, 0.0), "inf");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("gpma-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        save_csv("unit_test", &["a", "b"], &[vec!["1,x".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string("results/unit_test.csv").unwrap();
        std::env::set_current_dir(old).unwrap();
        assert_eq!(content, "a,b\n\"1,x\",2\n");
    }
}

//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT ...] [--scale F] [--seed N] [--slides N] [--quick]
//!
//! EXPERIMENT: all | table1 | table2 | fig7 | fig8 | fig9 | fig10 | fig11 |
//!             fig12 | sorted | explicit | ablation | service | cluster |
//!             incremental | elastic | audit | recovery | obs | serving
//! ```

use gpma_bench::apps::App;
use gpma_bench::experiments as exp;
use gpma_bench::ExpConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--scale" => {
                cfg.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a float");
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--slides" => {
                cfg.max_slides = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slides needs an integer");
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        print_help();
        return;
    }
    if selected.iter().any(|s| s == "all") {
        selected = [
            "table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "sorted",
            "explicit", "ablation", "service", "cluster", "incremental", "elastic", "audit",
            "recovery", "obs", "serving",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    eprintln!(
        "repro: scale={} seed={} slides={} ({} experiment(s))",
        cfg.scale,
        cfg.seed,
        cfg.max_slides,
        selected.len()
    );
    for s in &selected {
        let t0 = std::time::Instant::now();
        match s.as_str() {
            "table1" => exp::table1(),
            "table2" => {
                exp::table2(&cfg);
            }
            "fig7" => exp::fig7(&cfg),
            "fig8" => exp::fig_app(&cfg, App::Bfs, "fig8"),
            "fig9" => exp::fig_app(&cfg, App::ConnectedComponent, "fig9"),
            "fig10" => exp::fig_app(&cfg, App::PageRank, "fig10"),
            "fig11" => exp::fig11(&cfg),
            "fig12" => exp::fig12(&cfg),
            "sorted" => exp::sorted_stream(&cfg),
            "explicit" => exp::explicit_stream(&cfg),
            "ablation" => exp::ablation(&cfg),
            "service" => exp::service(&cfg),
            "cluster" => exp::cluster(&cfg),
            "incremental" => exp::incremental(&cfg),
            "elastic" => exp::elastic(&cfg),
            "audit" => exp::audit(&cfg),
            "recovery" => exp::recovery(&cfg),
            "obs" => exp::obs(&cfg),
            "serving" => exp::serving(&cfg),
            other => eprintln!("unknown experiment: {other} (see --help)"),
        }
        eprintln!("[{s} finished in {:.1}s]", t0.elapsed().as_secs_f64());
    }
}

fn print_help() {
    println!(
        "repro — regenerate the paper's evaluation\n\
         usage: repro [EXPERIMENT ...] [--scale F] [--seed N] [--slides N] [--quick]\n\
         experiments: all table1 table2 fig7 fig8 fig9 fig10 fig11 fig12 sorted explicit ablation service cluster incremental elastic audit recovery obs serving\n\
         defaults: --scale 0.005 --seed 42 --slides 3\n\
         --quick: scale 0.001, 1 slide per configuration"
    );
}

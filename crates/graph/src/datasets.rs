//! The four evaluation datasets of Table 2, reproduced as scaled synthetic
//! streams.
//!
//! The real Reddit dump (Kaggle) and Pokec (SNAP) are unavailable offline, so
//! per DESIGN.md's substitution table we synthesize streams matching their
//! published statistics and structure: Reddit-like is a *temporal influence
//! graph* with power-law activity and recency-biased attachment; Pokec-like
//! is a friendship graph with moderate skew. Graph500 and Random use our own
//! RMAT and Erdős–Rényi generators exactly as the paper does.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::edge::Edge;
use crate::formats::Coo;
use crate::gen::{erdos_renyi, powerlaw_rank, rmat};
use crate::stream::GraphStream;

/// The four datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Reddit-like: skewed interaction stream in timestamp order.
    RedditLike,
    /// Pokec-like: social network with shuffled timestamps.
    PokecLike,
    /// Graph500 RMAT.
    Graph500,
    /// Uniform random (Erdős–Rényi).
    UniformRandom,
}

impl DatasetKind {
    /// The four Table 2 datasets.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::RedditLike,
        DatasetKind::PokecLike,
        DatasetKind::Graph500,
        DatasetKind::UniformRandom,
    ];

    /// Display name used in tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::RedditLike => "Reddit",
            DatasetKind::PokecLike => "Pokec",
            DatasetKind::Graph500 => "Graph500",
            DatasetKind::UniformRandom => "Random",
        }
    }

    /// Paper-scale statistics from Table 2: `(|V|, |E|)`.
    pub fn paper_stats(&self) -> (u64, u64) {
        match self {
            DatasetKind::RedditLike => (2_610_000, 34_400_000),
            DatasetKind::PokecLike => (1_600_000, 30_600_000),
            DatasetKind::Graph500 => (1_000_000, 200_000_000),
            DatasetKind::UniformRandom => (1_000_000, 200_000_000),
        }
    }
}

/// Statistics row of Table 2 for a generated stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// `|V|`.
    pub vertices: u64,
    /// `|E|`: total stream length.
    pub edges: u64,
    /// `|E| / |V|`.
    pub avg_degree: f64,
    /// `|Es|`: initial-graph size (half the stream).
    pub initial_edges: u64,
    /// `|Es| / |V|`.
    pub initial_avg_degree: f64,
}

impl DatasetStats {
    /// Compute the Table 2 statistics of a generated stream.
    pub fn of(stream: &GraphStream) -> DatasetStats {
        let v = stream.num_vertices as u64;
        let e = stream.len() as u64;
        let es = stream.initial_size() as u64;
        DatasetStats {
            name: stream.name.clone(),
            vertices: v,
            edges: e,
            avg_degree: e as f64 / v as f64,
            initial_edges: es,
            initial_avg_degree: es as f64 / v as f64,
        }
    }
}

/// Generate a dataset's stream scaled by `scale` (1.0 = paper scale). The
/// per-vertex degree (`|E|/|V|`) is preserved at every scale so the shape of
/// the evaluation is unchanged.
pub fn generate(kind: DatasetKind, scale: f64, seed: u64) -> GraphStream {
    let (pv, pe) = kind.paper_stats();
    let v = ((pv as f64 * scale).round() as u64).max(64) as u32;
    let e = ((pe as f64 * scale).round() as usize).max(512);
    // Sub-scaling distorts density (|E| shrinks linearly but the pair space
    // quadratically); cap at half the distinct-pair space so tiny scales
    // still generate. Table 2's |E|/|V| is preserved whenever the cap is
    // inactive (scale ≥ ~0.001 for the dense synthetic datasets).
    let clamp = |v: u32, e: usize| e.min((v as usize * (v as usize - 1)) / 2);
    match kind {
        DatasetKind::RedditLike => reddit_like(v, clamp(v, e), seed),
        DatasetKind::PokecLike => pokec_like(v, clamp(v, e), seed),
        DatasetKind::Graph500 => {
            // RMAT needs a power-of-two vertex count.
            let scale_bits = (v as f64).log2().round().max(6.0) as u32;
            let coo = rmat(scale_bits, clamp(1 << scale_bits, e), seed);
            GraphStream::from_coo_shuffled(kind.name(), coo, seed ^ 0xDEAD)
        }
        DatasetKind::UniformRandom => {
            let coo = erdos_renyi(v, clamp(v, e), seed);
            GraphStream::from_coo_shuffled(kind.name(), coo, seed ^ 0xBEEF)
        }
    }
}

/// Temporal influence graph à la Reddit: an edge `a → b` means a comment by
/// `b` on a post of `a` triggered at that timestamp. Activity is power-law
/// (few users dominate) and attachment is recency-biased, producing the
/// bursty locality real comment streams show. Edges are emitted in
/// timestamp order — this is the only dataset with *real* (non-shuffled)
/// temporal order, matching §6.1.
pub fn reddit_like(num_vertices: u32, num_edges: usize, seed: u64) -> GraphStream {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(num_edges * 2);
    let mut edges = Vec::with_capacity(num_edges);
    // Ring of recently active users that comments preferentially attach to.
    let recent_cap = (num_vertices as usize / 16).clamp(8, 4096);
    let mut recent: Vec<u32> = Vec::with_capacity(recent_cap);
    let mut attempts = 0usize;
    let max_attempts = num_edges.saturating_mul(30).max(1024);
    while edges.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        // Post author: power-law over the population (influencers dominate).
        let author = powerlaw_rank(num_vertices, 0.62, &mut rng);
        // Commenter: 70% from the recently-active ring, else fresh.
        let commenter = if !recent.is_empty() && rng.gen_bool(0.7) {
            recent[rng.gen_range(0..recent.len())]
        } else {
            powerlaw_rank(num_vertices, 0.45, &mut rng)
        };
        if author == commenter {
            continue;
        }
        if seen.insert((author, commenter)) {
            edges.push(Edge::new(author, commenter));
            if recent.len() == recent_cap {
                let idx = rng.gen_range(0..recent_cap);
                recent[idx] = commenter;
            } else {
                recent.push(commenter);
            }
        }
    }
    fill_remaining(&mut edges, &mut seen, num_vertices, num_edges, &mut rng);
    GraphStream::new("Reddit", num_vertices, edges)
}

/// Friendship network à la Pokec: moderate skew (social networks are far
/// less skewed than RMAT), arbitrary timestamps (shuffled order).
pub fn pokec_like(num_vertices: u32, num_edges: usize, seed: u64) -> GraphStream {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(num_edges * 2);
    let mut edges = Vec::with_capacity(num_edges);
    let mut attempts = 0usize;
    let max_attempts = num_edges.saturating_mul(30).max(1024);
    while edges.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        let src = powerlaw_rank(num_vertices, 0.35, &mut rng);
        let dst = powerlaw_rank(num_vertices, 0.35, &mut rng);
        if src == dst {
            continue;
        }
        if seen.insert((src, dst)) {
            edges.push(Edge::new(src, dst));
        }
    }
    fill_remaining(&mut edges, &mut seen, num_vertices, num_edges, &mut rng);
    GraphStream::from_coo_shuffled("Pokec", Coo::new(num_vertices, edges), seed ^ 0xF00D)
}

fn fill_remaining(
    edges: &mut Vec<Edge>,
    seen: &mut std::collections::HashSet<(u32, u32)>,
    n: u32,
    target: usize,
    rng: &mut SmallRng,
) {
    while edges.len() < target {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        if src != dst && seen.insert((src, dst)) {
            edges.push(Edge::new(src, dst));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ratios_are_preserved_at_scale() {
        for kind in DatasetKind::ALL {
            let s = generate(kind, 0.002, 42);
            let stats = DatasetStats::of(&s);
            let (pv, pe) = kind.paper_stats();
            let paper_ratio = pe as f64 / pv as f64;
            // Graph500 rounds |V| to a power of two; allow slack.
            assert!(
                stats.avg_degree > paper_ratio * 0.4 && stats.avg_degree < paper_ratio * 2.6,
                "{}: degree {} vs paper {paper_ratio}",
                kind.name(),
                stats.avg_degree
            );
            assert_eq!(stats.initial_edges, stats.edges / 2);
        }
    }

    #[test]
    fn datasets_are_simple_digraphs() {
        for kind in DatasetKind::ALL {
            let s = generate(kind, 0.001, 7);
            let mut seen = std::collections::HashSet::new();
            for e in &s.edges {
                assert_ne!(e.src, e.dst, "{}: self loop", kind.name());
                assert!(e.src < s.num_vertices && e.dst < s.num_vertices);
                assert!(seen.insert((e.src, e.dst)), "{}: duplicate edge", kind.name());
            }
        }
    }

    #[test]
    fn reddit_is_skewed_pokec_less_so() {
        let reddit = reddit_like(2000, 30_000, 1);
        let pokec = pokec_like(2000, 30_000, 1);
        let gini = |s: &GraphStream| {
            let mut deg = vec![0u64; s.num_vertices as usize];
            for e in &s.edges {
                deg[e.src as usize] += 1;
            }
            deg.sort_unstable();
            let n = deg.len() as f64;
            let total: u64 = deg.iter().sum();
            let mut cum = 0.0;
            let mut area = 0.0;
            for &d in &deg {
                cum += d as f64 / total as f64;
                area += cum / n;
            }
            1.0 - 2.0 * area
        };
        let gr = gini(&reddit);
        let gp = gini(&pokec);
        assert!(gr > gp, "Reddit gini {gr} should exceed Pokec gini {gp}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetKind::Graph500, 0.001, 11);
        let b = generate(DatasetKind::Graph500, 0.001, 11);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn stats_row_matches_stream() {
        let s = generate(DatasetKind::UniformRandom, 0.001, 3);
        let st = DatasetStats::of(&s);
        assert_eq!(st.vertices, s.num_vertices as u64);
        assert_eq!(st.edges, s.len() as u64);
        assert!((st.avg_degree - st.edges as f64 / st.vertices as f64).abs() < 1e-9);
    }
}

//! Graph edge streams and the sliding-window model of Section 3.
//!
//! A [`GraphStream`] is an edge sequence in timestamp order. Following §6.1's
//! stream setup, the first half of the edges (`Es` in Table 2) form the
//! initial graph; the window then holds a fixed number of the most recent
//! edges, and every slide of `b` edges inserts the `b` newest and deletes the
//! `b` oldest. Explicit random insert/delete streams (the §6.3 extended
//! experiment) are also provided.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edge::Edge;
use crate::formats::Coo;

/// One update batch handed to a dynamic graph store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateBatch {
    /// Edges to insert (or overwrite).
    pub insertions: Vec<Edge>,
    /// Edges to delete.
    pub deletions: Vec<Edge>,
}

impl UpdateBatch {
    /// Total updates in the batch (insertions plus deletions).
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// Whether the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }
}

/// An edge stream in arrival (timestamp) order.
#[derive(Debug, Clone)]
pub struct GraphStream {
    /// Dataset name, used in reports.
    pub name: String,
    /// Number of vertices.
    pub num_vertices: u32,
    /// Edges in timestamp order.
    pub edges: Vec<Edge>,
}

impl GraphStream {
    /// A stream from edges already in arrival order.
    pub fn new(name: impl Into<String>, num_vertices: u32, edges: Vec<Edge>) -> Self {
        GraphStream {
            name: name.into(),
            num_vertices,
            edges,
        }
    }

    /// Build a stream from a generated graph by shuffling its edges into a
    /// random arrival order (the paper randomizes timestamps for Pokec,
    /// Graph500 and Random).
    pub fn from_coo_shuffled(name: impl Into<String>, coo: Coo, seed: u64) -> Self {
        let mut edges = coo.edges;
        let mut rng = SmallRng::seed_from_u64(seed);
        // Fisher–Yates.
        for i in (1..edges.len()).rev() {
            let j = rng.gen_range(0..=i);
            edges.swap(i, j);
        }
        GraphStream::new(name, coo.num_vertices, edges)
    }

    /// Total number of edges in the stream.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the stream holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// `|Es|`: size of the initial graph (first half of the stream, §6.1).
    pub fn initial_size(&self) -> usize {
        self.edges.len() / 2
    }

    /// The initial graph's edges.
    pub fn initial_edges(&self) -> &[Edge] {
        &self.edges[..self.initial_size()]
    }

    /// Sliding-window batches: each slide inserts the next `batch` edges and
    /// deletes the `batch` oldest edges in the window (window size stays
    /// `initial_size()`).
    pub fn sliding(&self, batch: usize) -> SlidingWindow<'_> {
        assert!(batch > 0, "batch must be positive");
        SlidingWindow {
            stream: self,
            window_start: 0,
            window_end: self.initial_size(),
            batch,
        }
    }

    /// Batch size corresponding to a paper-style slide ratio (e.g. `0.01`
    /// for the "1%" slide size of Figures 8–10): a fraction of `|E|`.
    pub fn slide_batch_size(&self, ratio: f64) -> usize {
        ((self.edges.len() as f64 * ratio).round() as usize).max(1)
    }

    /// Explicit random insert/delete batches (§6.3 extended experiment):
    /// starts from the initial graph; each batch inserts fresh stream edges
    /// and deletes uniformly random *live* edges with ratio
    /// `delete_fraction`.
    pub fn explicit(&self, batch: usize, delete_fraction: f64, seed: u64) -> ExplicitStream<'_> {
        assert!((0.0..=1.0).contains(&delete_fraction));
        ExplicitStream {
            stream: self,
            live: self.initial_edges().to_vec(),
            next: self.initial_size(),
            batch,
            delete_fraction,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A locality-stressing variant of the stream: edges arrive in key
    /// order, so every batch hits adjacent PMA segments (the §6.2 "sorted
    /// graph stream" extreme case — GPMA's lock-conflict worst case).
    pub fn sorted_by_key(&self) -> GraphStream {
        let mut edges = self.edges.clone();
        edges.sort_by_key(|e| e.key());
        GraphStream::new(format!("{}-sorted", self.name), self.num_vertices, edges)
    }
}

/// Iterator of sliding-window update batches.
pub struct SlidingWindow<'a> {
    stream: &'a GraphStream,
    window_start: usize,
    window_end: usize,
    batch: usize,
}

impl<'a> Iterator for SlidingWindow<'a> {
    type Item = UpdateBatch;

    fn next(&mut self) -> Option<UpdateBatch> {
        if self.window_end >= self.stream.edges.len() {
            return None;
        }
        let b = self.batch.min(self.stream.edges.len() - self.window_end);
        let insertions = self.stream.edges[self.window_end..self.window_end + b].to_vec();
        let deletions = self.stream.edges[self.window_start..self.window_start + b].to_vec();
        self.window_start += b;
        self.window_end += b;
        Some(UpdateBatch {
            insertions,
            deletions,
        })
    }
}

/// Iterator of explicit insert/delete batches.
pub struct ExplicitStream<'a> {
    stream: &'a GraphStream,
    live: Vec<Edge>,
    next: usize,
    batch: usize,
    delete_fraction: f64,
    rng: SmallRng,
}

impl<'a> Iterator for ExplicitStream<'a> {
    type Item = UpdateBatch;

    fn next(&mut self) -> Option<UpdateBatch> {
        if self.next >= self.stream.edges.len() {
            return None;
        }
        let n_del = ((self.batch as f64) * self.delete_fraction).round() as usize;
        let n_ins = self.batch - n_del.min(self.batch);
        let n_ins = n_ins.min(self.stream.edges.len() - self.next);

        let insertions = self.stream.edges[self.next..self.next + n_ins].to_vec();
        self.next += n_ins;

        let mut deletions = Vec::with_capacity(n_del);
        for _ in 0..n_del.min(self.live.len()) {
            let i = self.rng.gen_range(0..self.live.len());
            deletions.push(self.live.swap_remove(i));
        }
        self.live.extend_from_slice(&insertions);
        if insertions.is_empty() && deletions.is_empty() {
            return None;
        }
        Some(UpdateBatch {
            insertions,
            deletions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Stream of `m` *distinct* edges (required by the live-set tests).
    fn stream_of(n: u32, m: usize) -> GraphStream {
        assert!(m <= (n as usize) * (n as usize - 1));
        let edges: Vec<Edge> = (0..)
            .map(|i| ((i / n as usize) as u32, (i % n as usize) as u32))
            .filter(|(s, d)| s != d)
            .take(m)
            .map(|(s, d)| Edge::new(s, d))
            .collect();
        GraphStream::new("test", n, edges)
    }

    #[test]
    fn initial_graph_is_first_half() {
        let s = stream_of(100, 1000);
        assert_eq!(s.initial_size(), 500);
        assert_eq!(s.initial_edges().len(), 500);
        assert_eq!(s.initial_edges()[0], s.edges[0]);
    }

    #[test]
    fn sliding_window_conserves_edges() {
        let s = stream_of(50, 200);
        let mut window: Vec<Edge> = s.initial_edges().to_vec();
        let mut slides = 0;
        for batch in s.sliding(17) {
            assert_eq!(batch.insertions.len(), batch.deletions.len());
            for d in &batch.deletions {
                let pos = window.iter().position(|e| e == d).expect("deleting live edge");
                window.remove(pos);
            }
            window.extend_from_slice(&batch.insertions);
            assert_eq!(window.len(), s.initial_size(), "window size is invariant");
            slides += 1;
        }
        assert_eq!(slides, 100usize.div_ceil(17));
        // After all slides the window holds exactly the last |Es| edges.
        assert_eq!(window, s.edges[100..].to_vec());
    }

    #[test]
    fn sliding_batches_cover_whole_stream_tail() {
        let s = stream_of(20, 101);
        let total_inserted: usize = s.sliding(7).map(|b| b.insertions.len()).sum();
        assert_eq!(total_inserted, 101 - 50);
    }

    #[test]
    fn explicit_stream_mixes_inserts_and_deletes() {
        let s = stream_of(30, 400);
        let mut n_ins = 0;
        let mut n_del = 0;
        for b in s.explicit(20, 0.5, 9) {
            n_ins += b.insertions.len();
            n_del += b.deletions.len();
        }
        assert_eq!(n_ins, 200);
        assert!(n_del > 150, "should delete roughly half per batch: {n_del}");
    }

    #[test]
    fn explicit_deletes_only_live_edges() {
        let s = stream_of(30, 200);
        let mut live: HashSet<(u32, u32)> = s.initial_edges().iter().map(|e| (e.src, e.dst)).collect();
        for b in s.explicit(10, 0.3, 1) {
            for d in &b.deletions {
                // Multigraph-free test stream: (src,dst) identifies the edge.
                assert!(live.remove(&(d.src, d.dst)), "deleted dead edge");
            }
            for i in &b.insertions {
                live.insert((i.src, i.dst));
            }
        }
    }

    #[test]
    fn shuffle_is_seeded_permutation() {
        let coo = Coo::new(10, (0..50).map(|i| Edge::new(i % 10, (i + 1) % 10)).collect());
        let a = GraphStream::from_coo_shuffled("a", coo.clone(), 4);
        let b = GraphStream::from_coo_shuffled("b", coo.clone(), 4);
        let c = GraphStream::from_coo_shuffled("c", coo.clone(), 5);
        assert_eq!(a.edges, b.edges);
        assert_ne!(a.edges, c.edges);
        let mut sa = a.edges.clone();
        let mut so = coo.edges.clone();
        sa.sort_by_key(|e| e.key());
        so.sort_by_key(|e| e.key());
        assert_eq!(sa, so, "shuffle must be a permutation");
    }

    #[test]
    fn sorted_stream_is_key_ordered() {
        let s = stream_of(20, 100).sorted_by_key();
        assert!(s.edges.windows(2).all(|w| w[0].key() <= w[1].key()));
    }

    #[test]
    fn slide_batch_size_ratio() {
        let s = stream_of(40, 1000);
        assert_eq!(s.slide_batch_size(0.01), 10);
        assert_eq!(s.slide_batch_size(0.000001), 1, "ratio floors at one edge");
    }
}

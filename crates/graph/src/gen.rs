//! Synthetic graph generators: RMAT (the Graph500 generator of §6.1) and
//! Erdős–Rényi G(n, m), plus the power-law sampling helper used by the
//! dataset synthesizers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::edge::Edge;
use crate::formats::Coo;

/// Graph500 RMAT partition probabilities (a, b, c, d).
pub const GRAPH500_PROBS: (f64, f64, f64, f64) = (0.57, 0.19, 0.19, 0.05);

/// RMAT generator: recursively picks a quadrant of the adjacency matrix per
/// bit level. Produces a heavily skewed (power-law) simple digraph with
/// `2^scale` vertices and `num_edges` distinct edges (no self-loops).
pub fn rmat(scale: u32, num_edges: usize, seed: u64) -> Coo {
    let (a, b, c, _) = GRAPH500_PROBS;
    let n = 1u64 << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(num_edges * 2);
    let mut edges = Vec::with_capacity(num_edges);
    let max_attempts = num_edges.saturating_mul(20).max(1024);
    let mut attempts = 0usize;
    while edges.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        let (mut src, mut dst) = (0u64, 0u64);
        for level in (0..scale).rev() {
            // Noise per level (±10%) keeps the degree distribution smooth,
            // as in the Graph500 reference implementation.
            let ab = a + b;
            let a_n = a * rng.gen_range(0.9..1.1);
            let ab_n = ab * rng.gen_range(0.9..1.1);
            let abc_n = (ab + c) * rng.gen_range(0.9..1.1);
            let r: f64 = rng.gen();
            let (bit_s, bit_d) = if r < a_n {
                (0u64, 0u64)
            } else if r < ab_n {
                (0, 1)
            } else if r < abc_n {
                (1, 0)
            } else {
                (1, 1)
            };
            src |= bit_s << level;
            dst |= bit_d << level;
        }
        if src == dst || src >= n || dst >= n {
            continue;
        }
        if seen.insert((src as u32, dst as u32)) {
            edges.push(Edge::new(src as u32, dst as u32));
        }
    }
    // Rare on reasonable parameters: top up with uniform pairs if RMAT kept
    // colliding (tiny scales only).
    top_up_uniform(&mut edges, &mut seen, n as u32, num_edges, &mut rng);
    Coo::new(n as u32, edges)
}

/// Erdős–Rényi G(n, m): `num_edges` distinct uniform pairs, no self-loops —
/// the paper's "Random" dataset (0.02% fill of the clique).
pub fn erdos_renyi(num_vertices: u32, num_edges: usize, seed: u64) -> Coo {
    assert!(num_vertices >= 2, "need at least two vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(num_edges * 2);
    let mut edges = Vec::with_capacity(num_edges);
    top_up_uniform(&mut edges, &mut seen, num_vertices, num_edges, &mut rng);
    Coo::new(num_vertices, edges)
}

fn top_up_uniform(
    edges: &mut Vec<Edge>,
    seen: &mut HashSet<(u32, u32)>,
    n: u32,
    target: usize,
    rng: &mut SmallRng,
) {
    let possible = (n as u64) * (n as u64 - 1);
    assert!(
        (target as u64) <= possible,
        "cannot place {target} distinct edges among {possible} pairs"
    );
    while edges.len() < target {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        if src != dst && seen.insert((src, dst)) {
            edges.push(Edge::new(src, dst));
        }
    }
}

/// Approximate power-law rank sampler: returns a rank in `0..n` where rank
/// `r` is drawn with probability roughly `∝ (r+1)^(-alpha)` for `alpha ∈
/// (0, 1)` shaped skew (inverse-CDF approximation; exact tails are not needed
/// — only the skew that stresses Stinger-style fixed blocks).
pub fn powerlaw_rank(n: u32, skew: f64, rng: &mut SmallRng) -> u32 {
    debug_assert!(n > 0);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let r = (n as f64 * u.powf(1.0 / (1.0 - skew).max(1e-3))) as u32;
    r.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_produces_requested_edges() {
        let g = rmat(10, 5_000, 1);
        assert_eq!(g.num_vertices, 1024);
        assert_eq!(g.num_edges(), 5_000);
        // Simple digraph: no self loops, no duplicates.
        let mut seen = HashSet::new();
        for e in &g.edges {
            assert_ne!(e.src, e.dst);
            assert!(e.src < 1024 && e.dst < 1024);
            assert!(seen.insert((e.src, e.dst)));
        }
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 40_000, 2);
        let mut deg = vec![0u32; 4096];
        for e in &g.edges {
            deg[e.src as usize] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let avg = 40_000.0 / 4096.0;
        // Power-law head: the hottest vertex far exceeds the mean.
        assert!(deg[0] as f64 > 8.0 * avg, "max degree {} vs avg {avg}", deg[0]);
    }

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let a = rmat(8, 1000, 7);
        let b = rmat(8, 1000, 7);
        let c = rmat(8, 1000, 8);
        assert_eq!(a.edges, b.edges);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn erdos_renyi_is_uniform_ish() {
        let g = erdos_renyi(1000, 20_000, 3);
        assert_eq!(g.num_edges(), 20_000);
        let mut deg = vec![0u32; 1000];
        for e in &g.edges {
            assert_ne!(e.src, e.dst);
            deg[e.src as usize] += 1;
        }
        let max = *deg.iter().max().unwrap() as f64;
        let avg = 20.0;
        // Uniform graph: no power-law head (Poisson tail stays near mean).
        assert!(max < 4.0 * avg, "max degree {max} too skewed for ER");
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn erdos_renyi_rejects_impossible_density() {
        erdos_renyi(3, 100, 0);
    }

    #[test]
    fn powerlaw_rank_in_range_and_skewed() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            let r = powerlaw_rank(100, 0.6, &mut rng);
            counts[r as usize] += 1;
        }
        assert!(counts[0] > counts[50], "rank 0 should dominate rank 50");
        assert!(counts[0] > 2 * counts[99]);
    }
}

//! Host-side sparse formats: COO and CSR (Section 2.3's storage-format
//! background). These are the reference representations the device
//! structures are checked against and the input format for bulk loads.

use crate::edge::{decode_key, Edge, VertexId};

/// Coordinate-format edge list (sorted or not).
#[derive(Debug, Clone, Default)]
pub struct Coo {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Edge list, in arbitrary order.
    pub edges: Vec<Edge>,
}

impl Coo {
    /// A COO over `num_vertices` vertices with the given edge list.
    pub fn new(num_vertices: u32, edges: Vec<Edge>) -> Self {
        Coo { num_vertices, edges }
    }

    /// Number of stored (possibly duplicate) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sort by row-major key and drop duplicate `(src, dst)` pairs, keeping
    /// the *last* occurrence (update semantics: later writes win).
    pub fn sorted_dedup(mut self) -> Coo {
        self.edges.sort_by_key(|e| e.key());
        self.edges.reverse();
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        self.edges.retain(|e| seen.insert(e.key()));
        self.edges.reverse();
        self
    }

    /// Convert to CSR (sorts and deduplicates internally).
    pub fn to_csr(&self) -> Csr {
        Csr::from_coo(self)
    }
}

/// Compressed Sparse Row: the format the paper adapts onto GPMA (§4.2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Csr {
    /// `offsets.len() == num_vertices + 1`.
    pub offsets: Vec<u32>,
    /// Column (destination) ids, row-major.
    pub dsts: Vec<u32>,
    /// Weights aligned with `dsts`.
    pub weights: Vec<u64>,
}

impl Csr {
    /// Number of vertices (`offsets.len() - 1`).
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len().saturating_sub(1)) as u32
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.dsts.len()
    }

    /// Build from a COO (which need not be sorted or deduplicated).
    pub fn from_coo(coo: &Coo) -> Csr {
        let mut keys: Vec<(u64, u64)> = coo.edges.iter().map(|e| (e.key(), e.weight)).collect();
        keys.sort_by_key(|&(k, _)| k);
        keys.dedup_by_key(|&mut (k, _)| k);
        let n = coo.num_vertices as usize;
        let mut offsets = vec![0u32; n + 1];
        for &(k, _) in &keys {
            let (src, _) = decode_key(k);
            offsets[src as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let dsts = keys.iter().map(|&(k, _)| k as u32).collect();
        let weights = keys.iter().map(|&(_, w)| w).collect();
        Csr { offsets, dsts, weights }
    }

    /// Out-neighbors of `u` with weights.
    pub fn neighbors(&self, u: VertexId) -> impl Iterator<Item = (u32, u64)> + '_ {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        self.dsts[lo..hi]
            .iter()
            .zip(self.weights[lo..hi].iter())
            .map(|(&d, &w)| (d, w))
    }

    /// Out-degree of `u` from the offset array.
    pub fn out_degree(&self, u: VertexId) -> u32 {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Structural sanity: offsets monotone, column ids in range and sorted
    /// within each row.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets empty".into());
        }
        if *self.offsets.last().unwrap() as usize != self.dsts.len() {
            return Err("last offset != nnz".into());
        }
        if self.dsts.len() != self.weights.len() {
            return Err("dsts/weights length mismatch".into());
        }
        for w in self.offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets not monotone".into());
            }
        }
        let n = self.num_vertices();
        for u in 0..n {
            let row: Vec<u32> = self.neighbors(u).map(|(d, _)| d).collect();
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!("row {u} not strictly sorted"));
                }
            }
            if row.iter().any(|&d| d >= n) {
                return Err(format!("row {u} has out-of-range column"));
            }
        }
        Ok(())
    }

    /// All edges in row-major order.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u)
                .map(move |(d, w)| Edge::weighted(u, d, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_graph() -> Coo {
        // The 3-vertex, 6-edge example of Figure 5.
        Coo::new(
            3,
            vec![
                Edge::weighted(0, 0, 1),
                Edge::weighted(0, 2, 2),
                Edge::weighted(1, 2, 3),
                Edge::weighted(2, 0, 4),
                Edge::weighted(2, 1, 5),
                Edge::weighted(2, 2, 6),
            ],
        )
    }

    #[test]
    fn fig5_csr_layout() {
        // Figure 5: Row Offset [0 2 3 6], Column Index [0 2 2 0 1 2],
        // Value [1 2 3 4 5 6].
        let csr = fig5_graph().to_csr();
        assert_eq!(csr.offsets, vec![0, 2, 3, 6]);
        assert_eq!(csr.dsts, vec![0, 2, 2, 0, 1, 2]);
        assert_eq!(csr.weights, vec![1, 2, 3, 4, 5, 6]);
        csr.validate().unwrap();
    }

    #[test]
    fn csr_from_unsorted_coo() {
        let mut coo = fig5_graph();
        coo.edges.reverse();
        let csr = coo.to_csr();
        assert_eq!(csr.offsets, vec![0, 2, 3, 6]);
        csr.validate().unwrap();
    }

    #[test]
    fn coo_dedup_keeps_last() {
        let coo = Coo::new(
            2,
            vec![
                Edge::weighted(0, 1, 1),
                Edge::weighted(1, 0, 2),
                Edge::weighted(0, 1, 9),
            ],
        )
        .sorted_dedup();
        assert_eq!(coo.num_edges(), 2);
        assert_eq!(coo.edges[0], Edge::weighted(0, 1, 9));
    }

    #[test]
    fn neighbors_and_degree() {
        let csr = fig5_graph().to_csr();
        assert_eq!(csr.out_degree(0), 2);
        assert_eq!(csr.out_degree(1), 1);
        assert_eq!(csr.out_degree(2), 3);
        let n2: Vec<(u32, u64)> = csr.neighbors(2).collect();
        assert_eq!(n2, vec![(0, 4), (1, 5), (2, 6)]);
    }

    #[test]
    fn iter_edges_roundtrip() {
        let coo = fig5_graph();
        let csr = coo.to_csr();
        let edges: Vec<Edge> = csr.iter_edges().collect();
        assert_eq!(edges, coo.edges);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut csr = fig5_graph().to_csr();
        csr.dsts[0] = 99;
        assert!(csr.validate().is_err());
        let mut csr2 = fig5_graph().to_csr();
        csr2.offsets[1] = 5;
        assert!(csr2.validate().is_err());
    }

    #[test]
    fn empty_graph() {
        let csr = Coo::new(4, vec![]).to_csr();
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 0);
        csr.validate().unwrap();
        assert_eq!(csr.neighbors(0).count(), 0);
    }
}

//! # gpma-graph — graphs, generators and streams for the GPMA reproduction
//!
//! Host-side graph machinery for *Accelerating Dynamic Graph Analytics on
//! GPUs* (PVLDB 11(1), 2017):
//!
//! * [`edge`] — the `(src << 32 | dst)` key encoding shared with the device
//!   structures (Figure 5), including per-row guard keys.
//! * [`formats`] — COO and CSR host formats (§2.3) used as references.
//! * [`gen`] — RMAT (Graph500) and Erdős–Rényi generators (§6.1).
//! * [`datasets`] — the four Table 2 datasets as scaled synthetic streams.
//! * [`stream`] — the sliding-window and explicit-update stream models (§3).
//!
//! ## Quick example
//!
//! The sliding-window model: the first half of a stream is the initial
//! graph; each slide inserts the `b` newest edges and deletes the `b`
//! oldest (§6.1):
//!
//! ```
//! use gpma_graph::{Edge, GraphStream};
//!
//! let edges: Vec<Edge> = (0..8).map(|i| Edge::new(i, (i + 1) % 8)).collect();
//! let stream = GraphStream::new("toy", 8, edges);
//! assert_eq!(stream.initial_size(), 4);
//! let slide = stream.sliding(2).next().unwrap();
//! assert_eq!(slide.insertions, vec![Edge::new(4, 5), Edge::new(5, 6)]);
//! assert_eq!(slide.deletions, vec![Edge::new(0, 1), Edge::new(1, 2)]);
//! ```

#![warn(missing_docs)]

pub mod datasets;
pub mod edge;
pub mod formats;
pub mod gen;
pub mod stream;

pub use edge::{decode_key, encode_key, guard_key, is_guard, row_start_key, Edge, VertexId, GUARD_DST, MAX_DST};
pub use formats::{Coo, Csr};
pub use stream::{GraphStream, UpdateBatch};

//! # gpma-graph — graphs, generators and streams for the GPMA reproduction
//!
//! Host-side graph machinery for *Accelerating Dynamic Graph Analytics on
//! GPUs* (PVLDB 11(1), 2017):
//!
//! * [`edge`] — the `(src << 32 | dst)` key encoding shared with the device
//!   structures (Figure 5), including per-row guard keys.
//! * [`formats`] — COO and CSR host formats (§2.3) used as references.
//! * [`gen`] — RMAT (Graph500) and Erdős–Rényi generators (§6.1).
//! * [`datasets`] — the four Table 2 datasets as scaled synthetic streams.
//! * [`stream`] — the sliding-window and explicit-update stream models (§3).

pub mod datasets;
pub mod edge;
pub mod formats;
pub mod gen;
pub mod stream;

pub use edge::{decode_key, encode_key, guard_key, is_guard, row_start_key, Edge, VertexId, GUARD_DST, MAX_DST};
pub use formats::{Coo, Csr};
pub use stream::{GraphStream, UpdateBatch};

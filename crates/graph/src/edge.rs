//! Edge and key encoding shared across the whole reproduction.
//!
//! GPMA stores one edge per PMA entry, keyed by the row-major `(src, dst)`
//! coordinate exactly like the paper's CSR-on-GPMA (Figure 5): the 64-bit key
//! is `src << 32 | dst`, so key order equals CSR entry order. `dst =
//! u32::MAX` is reserved for the per-row *guard* entries of Figure 5.

use serde::{Deserialize, Serialize};

/// Vertex identifier.
pub type VertexId = u32;

/// Sentinel destination for per-row guard entries `(r, ∞)`.
pub const GUARD_DST: u32 = u32::MAX;

/// Largest destination a real edge may use (one below the guard sentinel).
pub const MAX_DST: u32 = u32::MAX - 1;

/// A weighted directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (1 when unweighted).
    pub weight: u64,
}

impl Edge {
    /// An edge with the default weight 1.
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst, weight: 1 }
    }

    /// An edge with an explicit weight.
    pub fn weighted(src: VertexId, dst: VertexId, weight: u64) -> Self {
        Edge { src, dst, weight }
    }

    /// Row-major 64-bit storage key.
    pub fn key(&self) -> u64 {
        encode_key(self.src, self.dst)
    }

    /// The reversed edge (used to symmetrize directed inputs).
    pub fn reversed(&self) -> Edge {
        Edge {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }
}

/// `src << 32 | dst` — key order is CSR (row, column) order.
#[inline]
pub fn encode_key(src: VertexId, dst: VertexId) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Inverse of [`encode_key`].
#[inline]
pub fn decode_key(key: u64) -> (VertexId, VertexId) {
    ((key >> 32) as u32, key as u32)
}

/// Guard key `(row, ∞)` for [`GUARD_DST`]-style row delimiters.
#[inline]
pub fn guard_key(row: VertexId) -> u64 {
    encode_key(row, GUARD_DST)
}

/// First possible key of a row: `(row, 0)`.
#[inline]
pub fn row_start_key(row: VertexId) -> u64 {
    encode_key(row, 0)
}

/// True if `key` is a guard entry.
#[inline]
pub fn is_guard(key: u64) -> bool {
    (key as u32) == GUARD_DST
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        for (s, d) in [(0u32, 0u32), (1, 2), (u32::MAX - 1, 12345), (7, u32::MAX - 1)] {
            let k = encode_key(s, d);
            assert_eq!(decode_key(k), (s, d));
        }
    }

    #[test]
    fn key_order_is_row_major() {
        assert!(encode_key(0, 100) < encode_key(1, 0));
        assert!(encode_key(5, 3) < encode_key(5, 4));
        assert!(encode_key(5, MAX_DST) < guard_key(5));
        assert!(guard_key(5) < row_start_key(6));
    }

    #[test]
    fn guard_detection() {
        assert!(is_guard(guard_key(9)));
        assert!(!is_guard(encode_key(9, 0)));
        assert!(!is_guard(encode_key(9, MAX_DST)));
    }

    #[test]
    fn edge_helpers() {
        let e = Edge::weighted(3, 4, 9);
        assert_eq!(e.key(), encode_key(3, 4));
        assert_eq!(e.reversed(), Edge::weighted(4, 3, 9));
        assert_eq!(Edge::new(1, 2).weight, 1);
    }
}

//! The cluster runtime: cluster handles, the router thread that fans one
//! ingest stream out across per-shard [`StreamingService`] workers, the
//! coordinated epoch cut, and the shutdown protocol.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{
    bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError,
};
use gpma_core::checkpoint::{Checkpoint, CheckpointStore, MemoryCheckpointStore};
use gpma_core::delta::{apply_delta, split_delta_moves, DeltaCatchUp, DeltaLog, SnapshotDelta};
use gpma_core::framework::{DynamicGraphSystem, GraphSnapshot, BYTES_PER_UPDATE};
use gpma_core::multi::{DegreePartition, PartitionEpoch, Partitioner};
use gpma_graph::{Edge, UpdateBatch};
use gpma_obs::{EventKind, Registry as ObsRegistry, Stage, NO_SHARD};
use gpma_service::{DeltaMonitor, IngestHandle, ServiceConfig, ServiceReport, StreamingService};
use gpma_sim::pcie::{Pcie, TransferLedger};
use gpma_sim::{Device, DeviceConfig, PcieConfig};
use parking_lot::Mutex;

use crate::metrics::ClusterMetrics;
use crate::snapshot::ClusterSnapshot;

/// Tuning knobs for a [`GraphCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Capacity of the cluster's bounded router queue. Blocking producers
    /// stall when it fills — backpressure propagates from the shard queues
    /// through the router to every [`ClusterHandle`].
    pub queue_capacity: usize,
    /// Capacity of each shard service's own ingest queue.
    pub shard_queue_capacity: usize,
    /// Flush threshold of each shard's `GraphStreamBuffer` (updates per
    /// device step).
    pub flush_threshold: usize,
    /// Updates the router coalesces before forwarding per-shard sub-batches
    /// (one modeled DMA per non-empty sub-batch). Larger values amortize
    /// the per-transfer latency floor; smaller values cut snapshot
    /// staleness.
    pub router_batch: usize,
    /// Cut-level deltas the cluster retains for reader catch-up
    /// ([`GraphCluster::deltas_since`]).
    pub delta_log_capacity: usize,
    /// Epoch deltas each *shard* service retains. Must comfortably cover
    /// the flushes a shard performs between two coordinated cuts, or the
    /// cluster falls back to publishing the cut as a full snapshot.
    pub shard_delta_log_capacity: usize,
    /// Skew-driven automatic resharding. `None` (the default) keeps the
    /// cluster static; `Some` makes the router watch
    /// [`routing_skew`](crate::ClusterMetrics::routing_skew) and migrate
    /// onto a degree-aware plan when the threshold is crossed.
    pub rebalance: Option<RebalancePolicy>,
    /// Durability and failover. `None` (the default) keeps PR-6 behavior: a
    /// dead shard degrades cuts to its last published snapshot. `Some`
    /// makes the router checkpoint every shard to the policy's
    /// [`CheckpointStore`] at the configured cut cadence, keep per-shard
    /// replay logs of forwarded sub-batches, and — when a dead worker is
    /// detected — respawn it from the latest checkpoint, replay the flush
    /// gap from the dead worker's delta ring (published-snapshot fallback
    /// if outrun) and re-ingest the replay log, rejoining oracle-exact.
    pub recovery: Option<RecoveryPolicy>,
    /// Fault injection for crash-recovery tests: kill one shard worker once
    /// a routed-update threshold is crossed. `None` (the default) injects
    /// nothing.
    pub fault: Option<FaultPlan>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            queue_capacity: 4096,
            shard_queue_capacity: 1024,
            flush_threshold: 64,
            router_batch: 256,
            delta_log_capacity: 256,
            shard_delta_log_capacity: 4096,
            rebalance: None,
            recovery: None,
            fault: None,
        }
    }
}

/// Durability and failover policy (see [`ClusterConfig::recovery`]).
#[derive(Clone)]
pub struct RecoveryPolicy {
    /// Where per-shard checkpoints are persisted. "Latest" means most
    /// recently *saved* — epochs restart when a shard worker is respawned,
    /// so save order, not epoch order, identifies the newest incarnation.
    pub store: Arc<dyn CheckpointStore>,
    /// Checkpoint every shard at every `n`-th coordinated cut (clamped to
    /// ≥ 1). Sparser cadences trade checkpoint bandwidth for longer
    /// delta-chain / replay-log recovery.
    pub checkpoint_every_cuts: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            store: Arc::new(MemoryCheckpointStore::new()),
            checkpoint_every_cuts: 1,
        }
    }
}

impl std::fmt::Debug for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryPolicy")
            .field("store", &"Arc<dyn CheckpointStore>")
            .field("checkpoint_every_cuts", &self.checkpoint_every_cuts)
            .finish()
    }
}

/// One-shot fault injection (see [`ClusterConfig::fault`]): the router
/// kills `kill_shard`'s worker — no drain, no final flush, exactly
/// [`StreamingService::inject_failure`] — right after the burst in which
/// the cluster-lifetime routed-update count crosses
/// `after_routed_updates`. [`GraphCluster::kill_shard`] is the imperative
/// equivalent for tests that want to pick the moment themselves.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Shard whose worker dies (out-of-range plans are logged and counted
    /// as [`ClusterMetrics::worker_errors`], never fatal).
    pub kill_shard: usize,
    /// Routed-update count (cluster lifetime, all shards) at which the
    /// kill fires.
    pub after_routed_updates: u64,
    /// When true, the plan stays armed past its threshold until a
    /// copy-on-write reshard is in flight, and fires *inside* it — the
    /// crash window the COW recovery interaction tests need to hit
    /// deterministically.
    pub during_reshard: bool,
}

/// When (and toward what) the router reshards on its own: after at least
/// [`min_updates`](Self::min_updates) routed updates under the current
/// plan, a max/mean update skew above
/// [`skew_threshold`](Self::skew_threshold) triggers a live reshard onto a
/// [`DegreePartition`] built from the per-vertex update counts the router
/// has observed. The per-shard window counters reset at every reshard, so
/// the policy re-arms only after another `min_updates` observations — the
/// cooldown that keeps a persistently hot single vertex from thrashing the
/// cluster.
#[derive(Debug, Clone, Copy)]
pub struct RebalancePolicy {
    /// Trigger when the busiest shard's routed-update count exceeds this
    /// multiple of the per-shard mean (`1.0` = perfect balance; the edge
    /// grid sits near `2.0` on power-law rows).
    pub skew_threshold: f64,
    /// Minimum routed updates under the current plan before the skew is
    /// trusted (and, after a reshard, before the next one may fire).
    pub min_updates: u64,
    /// Shard count of the rebalance target (`None` keeps the current
    /// count — rebalance in place; `Some(n)` also grows or shrinks).
    pub target_shards: Option<usize>,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            skew_threshold: 1.5,
            min_updates: 4096,
            target_shards: None,
        }
    }
}

/// Why a [`GraphCluster::reshard`] request was rejected (the cluster keeps
/// running under its current plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardError {
    /// The new plan partitions a different vertex-id space. Vertex ids are
    /// global; a reshard moves edges, it does not renumber them.
    VertexMismatch {
        /// The cluster's vertex-id space.
        expected: u32,
        /// The rejected plan's vertex-id space.
        got: u32,
    },
    /// The cluster router has already shut down.
    Closed,
}

impl std::fmt::Display for ReshardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReshardError::VertexMismatch { expected, got } => write!(
                f,
                "reshard rejected: plan covers {got} vertices, cluster has {expected}"
            ),
            ReshardError::Closed => write!(f, "the graph cluster has shut down"),
        }
    }
}

impl std::error::Error for ReshardError {}

impl From<ClusterClosed> for ReshardError {
    fn from(_: ClusterClosed) -> Self {
        ReshardError::Closed
    }
}

/// What one live reshard did, returned by [`GraphCluster::reshard`] /
/// [`GraphCluster::rebalance`] and kept in
/// [`GraphCluster::reshard_history`].
#[derive(Debug, Clone)]
pub struct ReshardReport {
    /// Partition-epoch version the reshard produced (1 = first reshard).
    pub version: u64,
    /// Policy name routed under before the reshard.
    pub from_policy: String,
    /// Policy name in force after the reshard.
    pub to_policy: String,
    /// Shard count before.
    pub from_shards: usize,
    /// Shard count after.
    pub to_shards: usize,
    /// Edges whose owner changed (extracted and re-ingested).
    pub migrated_edges: usize,
    /// Edges left in place on their current shard.
    pub resident_edges: usize,
    /// Modeled bytes the migration shipped as device-to-device DMAs.
    pub migration_bytes: u64,
    /// Modeled bytes a from-scratch repartition would have shipped
    /// (every live edge re-uploaded).
    pub full_rebuild_bytes: u64,
    /// Wall-clock seconds ingest was actually paused: the final settle
    /// barrier, residual diff and plan swap only — the copy-on-write
    /// protocol migrates from a frozen cut and replays delta chains in the
    /// background while ingest keeps flowing (see `background_secs`).
    pub pause_secs: f64,
    /// Wall-clock seconds the reshard spent on background copy-on-write
    /// work (frozen-cut copy + delta-chain replay rounds) with ingest
    /// still flowing. Not a stall.
    pub background_secs: f64,
    /// Cut number of the snapshot-style epoch marker the reshard published.
    pub cut: u64,
    /// True when the reshard was fired by the [`RebalancePolicy`] rather
    /// than an explicit call.
    pub auto: bool,
}

/// Error returned by every handle operation once the cluster router has
/// exited (after [`GraphCluster::shutdown`] or a router panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterClosed;

impl std::fmt::Display for ClusterClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the graph cluster has shut down")
    }
}

impl std::error::Error for ClusterClosed {}

/// Commands flowing through the bounded router queue.
enum Command {
    Insert(Edge),
    Delete(Edge),
    Batch(UpdateBatch),
    /// Forward all residue, barrier every shard, publish a cut, ack it.
    Cut(Sender<Arc<ClusterSnapshot>>),
    /// Live reshard onto an explicit new plan; ack with the migration
    /// accounting (or why it was rejected).
    Reshard(Arc<dyn Partitioner>, Sender<Result<ReshardReport, ReshardError>>),
    /// Reshard onto a degree-aware plan built from the router's observed
    /// per-vertex load, optionally changing the shard count.
    Rebalance(Option<usize>, Sender<Result<ReshardReport, ReshardError>>),
    /// Reply with each shard service's live metrics.
    Stats(Sender<Vec<gpma_service::ServiceMetrics>>),
    /// Fault injection: kill one shard's worker mid-stream; ack whether the
    /// kill landed.
    Kill(usize, Sender<bool>),
    /// Drain everything queued, final-cut, stop the shard services, exit.
    Shutdown,
}

/// Router-side accounting, written by the router thread per forwarding step
/// and read whole by [`GraphCluster::metrics`].
#[derive(Debug, Clone, Default)]
pub(crate) struct RouterCounters {
    /// Updates routed to each shard *under the current partition plan*
    /// (reset by every reshard — the skew window the rebalance policy
    /// evaluates).
    pub routed: Vec<u64>,
    /// Non-empty sub-batches forwarded to each shard (one modeled DMA
    /// each) — together with `routed`, the raw routing-skew observables.
    /// Reset with `routed` at every reshard.
    pub sub_batches: Vec<u64>,
    /// Modeled host→shard transfer ledger per shard (current plan).
    pub transfer: Vec<TransferLedger>,
    /// Ledgers of shards retired (or reset) by reshards, merged — keeps
    /// cluster-lifetime transfer totals monotone across plan changes.
    pub retired_transfer: TransferLedger,
    /// Routed insertions whose endpoints have different home shards (the
    /// traffic analytics must pay along partition boundaries).
    pub cut_edges: u64,
    /// Pending insertions cancelled in the router by a later same-key
    /// deletion (arrival-order semantics, before the shard even sees them).
    pub cancelled_inserts: u64,
    /// Live reshards performed (explicit + policy-triggered).
    pub reshard_count: u64,
    /// Edges migrated between shards across all reshards.
    pub migrated_edges: u64,
    /// Modeled migration bytes shipped as device-to-device DMAs.
    pub migration_bytes: u64,
    /// Total wall-clock seconds ingest was paused by reshards (settle +
    /// residual only under the copy-on-write protocol).
    pub migration_pause_secs: f64,
    /// Total wall-clock seconds reshards spent in background copy/replay
    /// rounds while ingest kept flowing.
    pub migration_background_secs: f64,
    /// Dead shard workers detected and respawned.
    pub recoveries: u64,
    /// Total wall-clock seconds spent recovering.
    pub recovery_secs: f64,
    /// Epoch deltas replayed from dead rings onto restored checkpoints.
    pub recovery_replayed_deltas: u64,
    /// Routed updates re-ingested from the router's replay logs.
    pub recovery_replayed_updates: u64,
    /// Recoveries forced onto a published-snapshot rebase.
    pub recovery_snapshot_fallbacks: u64,
    /// Checkpoints persisted to the recovery policy's store.
    pub checkpoints_taken: u64,
    /// Encoded bytes those checkpoints wrote.
    pub checkpoint_bytes: u64,
}

/// State shared between producers, the router, and the front object.
struct Shared {
    /// The versioned partition plan in force (the router swaps it whole at
    /// every reshard; readers see plan changes atomically).
    partition: Mutex<PartitionEpoch>,
    /// Every reshard performed, in order (explicit and policy-triggered).
    reshards: Mutex<Vec<ReshardReport>>,
    /// Latest published cut; swapped whole so readers never block the
    /// router for longer than an `Arc` clone.
    snapshot: Mutex<Arc<ClusterSnapshot>>,
    /// Cut-level deltas (epoch = cut number), assembled from the shard
    /// delta logs at every coordinated cut.
    delta_log: Mutex<DeltaLog>,
    /// Cuts whose delta could not be assembled because a shard's ring had
    /// already evicted part of the inter-cut chain (readers rebase on the
    /// full cut instead).
    delta_fallbacks: AtomicU64,
    /// Errors the router thread recovered from instead of panicking (a
    /// shard service found closed at a barrier, a misrouted control
    /// command); surfaced as [`ClusterMetrics::worker_errors`].
    worker_errors: AtomicU64,
    router: Mutex<RouterCounters>,
    ingested_inserts: AtomicU64,
    ingested_deletes: AtomicU64,
    /// Updates shed by the non-blocking offer path (producer-side).
    dropped_updates: AtomicU64,
    queries: AtomicU64,
    cuts: AtomicU64,
    /// The cluster-wide telemetry hub (DESIGN.md §13): shared with every
    /// shard service via [`StreamingService::spawn_instrumented`] so flush
    /// stages aggregate cluster-wide and survive shard respawns.
    obs: Arc<ObsRegistry>,
    /// True while the router is inside a live reshard. Producer sends that
    /// complete in this window are additionally sampled into the
    /// `ingest.reshard` histogram — ingest latency *under* migration, the
    /// headline number of the `obs` experiment.
    reshard_active: AtomicBool,
    started: Instant,
}

/// A cloneable producer handle feeding the cluster's bounded router queue.
///
/// Semantics match the single-shard [`IngestHandle`]: updates from one
/// handle apply in arrival order (insert-then-delete nets to *absent*)
/// regardless of which shard each edge routes to, because the router is a
/// single FIFO stage that cancels pending inserts before forwarding a
/// same-key deletion.
#[derive(Clone)]
pub struct ClusterHandle {
    tx: Sender<Command>,
    shared: Arc<Shared>,
}

impl ClusterHandle {
    /// Start an `ingest.enqueue` timing sample, or `None` when telemetry is
    /// off (the no-op path reads no clock at all).
    fn enqueue_t0(&self) -> Option<Instant> {
        self.shared.obs.is_enabled().then(Instant::now)
    }

    /// Finish an enqueue sample: always `ingest.enqueue`, plus
    /// `ingest.reshard` while a live reshard holds the router — the
    /// latency-under-migration histogram.
    fn record_enqueue(&self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let us = t0.elapsed().as_micros() as u64;
            self.shared.obs.record(Stage::IngestEnqueue, us);
            if self.shared.reshard_active.load(Ordering::Relaxed) {
                self.shared.obs.record(Stage::IngestReshard, us);
            }
        }
    }

    /// Stream one edge insertion, blocking while the router queue is full.
    pub fn insert(&self, e: Edge) -> Result<(), ClusterClosed> {
        let t0 = self.enqueue_t0();
        self.tx.send(Command::Insert(e)).map_err(|_| ClusterClosed)?;
        self.record_enqueue(t0);
        self.shared.ingested_inserts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Stream one edge deletion, blocking while the router queue is full.
    pub fn delete(&self, e: Edge) -> Result<(), ClusterClosed> {
        let t0 = self.enqueue_t0();
        self.tx.send(Command::Delete(e)).map_err(|_| ClusterClosed)?;
        self.record_enqueue(t0);
        self.shared.ingested_deletes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Stream a pre-assembled batch (deletions apply before insertions
    /// within the batch, the framework convention), blocking while the
    /// router queue is full.
    pub fn ingest(&self, batch: UpdateBatch) -> Result<(), ClusterClosed> {
        let (ins, del) = (batch.insertions.len() as u64, batch.deletions.len() as u64);
        let t0 = self.enqueue_t0();
        self.tx
            .send(Command::Batch(batch))
            .map_err(|_| ClusterClosed)?;
        self.record_enqueue(t0);
        self.shared.ingested_inserts.fetch_add(ins, Ordering::Relaxed);
        self.shared.ingested_deletes.fetch_add(del, Ordering::Relaxed);
        Ok(())
    }

    /// Non-blocking insert: `Ok(false)` (and a counted drop) when the
    /// router queue is full — the load-shedding policy for producers that
    /// must not stall. Mirrors [`IngestHandle::offer_insert`].
    pub fn offer_insert(&self, e: Edge) -> Result<bool, ClusterClosed> {
        let t0 = self.enqueue_t0();
        match self.tx.try_send(Command::Insert(e)) {
            Ok(()) => {
                self.record_enqueue(t0);
                self.shared.ingested_inserts.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(TrySendError::Full(_)) => {
                self.shared.dropped_updates.fetch_add(1, Ordering::Relaxed);
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => Err(ClusterClosed),
        }
    }

    /// Non-blocking delete; same drop policy as [`Self::offer_insert`].
    pub fn offer_delete(&self, e: Edge) -> Result<bool, ClusterClosed> {
        let t0 = self.enqueue_t0();
        match self.tx.try_send(Command::Delete(e)) {
            Ok(()) => {
                self.record_enqueue(t0);
                self.shared.ingested_deletes.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(TrySendError::Full(_)) => {
                self.shared.dropped_updates.fetch_add(1, Ordering::Relaxed);
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => Err(ClusterClosed),
        }
    }

    /// Non-blocking batch ingest: the whole batch is accepted or shed as
    /// one unit (a batch occupies a single router-queue slot, so partial
    /// shedding is impossible). `Ok(false)` counts every contained update
    /// as dropped. The ingest path a quota-metered serving front uses.
    pub fn offer_batch(&self, batch: UpdateBatch) -> Result<bool, ClusterClosed> {
        let (ins, del) = (batch.insertions.len() as u64, batch.deletions.len() as u64);
        let t0 = self.enqueue_t0();
        match self.tx.try_send(Command::Batch(batch)) {
            Ok(()) => {
                self.record_enqueue(t0);
                self.shared.ingested_inserts.fetch_add(ins, Ordering::Relaxed);
                self.shared.ingested_deletes.fetch_add(del, Ordering::Relaxed);
                Ok(true)
            }
            Err(TrySendError::Full(_)) => {
                self.shared
                    .dropped_updates
                    .fetch_add(ins + del, Ordering::Relaxed);
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => Err(ClusterClosed),
        }
    }

    /// Commands currently queued at the router (racy, for pacing).
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }
}

/// Final accounting returned by [`GraphCluster::shutdown`].
pub struct ClusterReport {
    /// The final coordinated cut: every accepted update is reflected.
    pub final_snapshot: Arc<ClusterSnapshot>,
    /// Cluster metrics frozen at shutdown (per-shard metrics included).
    pub metrics: ClusterMetrics,
    /// Each shard service's own report (system, final snapshot, metrics),
    /// index-aligned with shard ids.
    pub shard_reports: Vec<ServiceReport>,
    /// The cluster-level [`DeltaMonitor`]s handed back after their thread
    /// observed the final cut (empty when none were registered).
    pub delta_monitors: Vec<Box<dyn DeltaMonitor>>,
}

/// The sharded streaming facade: one ingest stream fanned out across
/// per-shard [`StreamingService`] workers by a [`Partitioner`] policy.
///
/// See the crate docs for the architecture diagram; `examples/
/// sharded_service.rs` is the runnable walkthrough.
pub struct GraphCluster {
    tx: Sender<Command>,
    router: Option<JoinHandle<Vec<ServiceReport>>>,
    delta_monitors: Option<JoinHandle<Vec<Box<dyn DeltaMonitor>>>>,
    shared: Arc<Shared>,
}

impl GraphCluster {
    /// Spawn the cluster: build one simulated device + GPMA+ system per
    /// shard (initial edges routed by the policy), wrap each in a
    /// [`StreamingService`], and start the router thread.
    pub fn spawn(
        cfg: ClusterConfig,
        device_cfg: &DeviceConfig,
        partitioner: Arc<dyn Partitioner>,
        initial_edges: &[Edge],
    ) -> Self {
        Self::spawn_with_delta_monitors(cfg, device_cfg, partitioner, initial_edges, Vec::new())
    }

    /// Rebuild a cluster purely from a [`CheckpointStore`] — the
    /// process-restart path: no live workers, no rings, no replay logs,
    /// just whatever the previous process persisted.
    ///
    /// Shard ids are probed densely from 0 until the store has no latest
    /// checkpoint for an id (a cluster always checkpoints shards `0..n`,
    /// so the first gap is the end). Each checkpoint's trailing delta
    /// chain is folded onto its base snapshot ([`Checkpoint::restore`]),
    /// the restored shard states are merged, and a *fresh* cluster is
    /// spawned over them — the new `partitioner` and shard count need not
    /// match the old cluster's, so a restart can also re-plan.
    ///
    /// State later than the last persisted checkpoint is gone by
    /// definition; with `checkpoint_every_cuts: 1` that is at most one
    /// cut's worth. Corrupt containers surface as
    /// [`io::ErrorKind::InvalidData`](std::io::ErrorKind::InvalidData); an
    /// empty store (no shard 0) yields
    /// [`io::ErrorKind::NotFound`](std::io::ErrorKind::NotFound).
    pub fn spawn_from_store(
        cfg: ClusterConfig,
        device_cfg: &DeviceConfig,
        partitioner: Arc<dyn Partitioner>,
        store: &dyn CheckpointStore,
    ) -> std::io::Result<Self> {
        let mut edges: Vec<Edge> = Vec::new();
        let mut shard = 0usize;
        while let Some(bytes) = store.load_latest(shard)? {
            let ckpt = Checkpoint::decode(&bytes).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("shard {shard} checkpoint corrupt: {e}"),
                )
            })?;
            edges.extend_from_slice(ckpt.restore().edges());
            shard += 1;
        }
        if shard == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "checkpoint store holds no shard 0 checkpoint",
            ));
        }
        // Shard states are disjoint under any 1D plan; under an edge-grid
        // plan an edge lives on exactly one cell. Either way the merge is
        // duplicate-free, and the fresh spawn re-routes it under the new
        // partitioner.
        edges.sort_unstable_by_key(|e| e.key());
        edges.dedup_by_key(|e| e.key());
        Ok(Self::spawn(cfg, device_cfg, partitioner, &edges))
    }

    /// Spawn with cluster-level [`DeltaMonitor`]s: after every coordinated
    /// cut they receive the cut's merged [`SnapshotDelta`] (or a full
    /// rebase when a shard's ring was outrun) on a dedicated thread — the
    /// incremental read path over globally consistent cuts.
    pub fn spawn_with_delta_monitors(
        cfg: ClusterConfig,
        device_cfg: &DeviceConfig,
        partitioner: Arc<dyn Partitioner>,
        initial_edges: &[Edge],
        delta_monitors: Vec<Box<dyn DeltaMonitor>>,
    ) -> Self {
        let num_shards = partitioner.num_shards();
        assert!(num_shards >= 1);
        let num_vertices = partitioner.num_vertices();
        let mut per_shard: Vec<Vec<Edge>> = vec![Vec::new(); num_shards];
        for e in initial_edges {
            per_shard[partitioner.shard_of_edge(e.src, e.dst)].push(*e);
        }

        let obs = Arc::new(ObsRegistry::new());
        let mut services = Vec::with_capacity(num_shards);
        let mut initial_snaps = Vec::with_capacity(num_shards);
        for (i, edges) in per_shard.iter().enumerate() {
            let (svc, initial) = spawn_shard_service(i, &cfg, device_cfg, num_vertices, edges, &obs);
            initial_snaps.push(initial);
            services.push(svc);
        }

        let initial = Arc::new(ClusterSnapshot::new(0, num_vertices, initial_snaps));
        let shared = Arc::new(Shared {
            partition: Mutex::new(PartitionEpoch::new(partitioner.clone())),
            reshards: Mutex::new(Vec::new()),
            snapshot: Mutex::new(initial.clone()),
            delta_log: Mutex::new(DeltaLog::new(cfg.delta_log_capacity)),
            delta_fallbacks: AtomicU64::new(0),
            worker_errors: AtomicU64::new(0),
            router: Mutex::new(RouterCounters {
                routed: vec![0; num_shards],
                sub_batches: vec![0; num_shards],
                transfer: vec![TransferLedger::default(); num_shards],
                ..Default::default()
            }),
            ingested_inserts: AtomicU64::new(0),
            ingested_deletes: AtomicU64::new(0),
            dropped_updates: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            cuts: AtomicU64::new(0),
            obs,
            reshard_active: AtomicBool::new(false),
            started: Instant::now(),
        });

        let (monitor_handle, cut_tx) = if delta_monitors.is_empty() {
            (None, None)
        } else {
            let (cut_tx, cut_rx) = crossbeam::channel::unbounded::<CutEvent>();
            let handle = std::thread::Builder::new()
                .name("gpma-cluster-deltas".into())
                .spawn(move || run_cut_monitors(initial, cut_rx, delta_monitors))
                .expect("spawn cluster delta-monitor thread");
            (Some(handle), Some(cut_tx))
        };

        let (tx, rx) = bounded(cfg.queue_capacity.max(1));
        let router_shared = shared.clone();
        let router_part = partitioner.clone();
        let router_device_cfg = device_cfg.clone();
        let router = std::thread::Builder::new()
            .name("gpma-cluster-router".into())
            .spawn(move || {
                run_router(
                    rx,
                    services,
                    router_part,
                    router_shared,
                    cfg,
                    router_device_cfg,
                    cut_tx,
                )
            })
            .expect("spawn cluster router thread");

        GraphCluster {
            tx,
            router: Some(router),
            delta_monitors: monitor_handle,
            shared,
        }
    }

    /// A new producer handle; clone freely across threads.
    pub fn handle(&self) -> ClusterHandle {
        ClusterHandle {
            tx: self.tx.clone(),
            shared: self.shared.clone(),
        }
    }

    /// The partitioning policy the router currently applies (swapped whole
    /// by [`Self::reshard`] / the [`RebalancePolicy`]).
    pub fn partitioner(&self) -> Arc<dyn Partitioner> {
        self.shared.partition.lock().plan().clone()
    }

    /// Version of the partition plan in force (0 = the spawn-time plan;
    /// each reshard increments it).
    pub fn partition_version(&self) -> u64 {
        self.shared.partition.lock().version()
    }

    /// Number of shards (and shard services / simulated devices) under the
    /// current plan.
    pub fn num_shards(&self) -> usize {
        self.shared.partition.lock().plan().num_shards()
    }

    /// Every reshard performed so far, in order (explicit and
    /// policy-triggered).
    pub fn reshard_history(&self) -> Vec<ReshardReport> {
        self.shared.reshards.lock().clone()
    }

    /// Live reshard onto an explicit new plan: quiesce ingest, migrate the
    /// minimal edge-move set between the plans (device-to-device DMAs,
    /// charged to the transfer ledgers), resume routing under the new plan,
    /// and publish a snapshot-style epoch marker (readers of
    /// [`Self::deltas_since`] at older cuts rebase on the marker cut;
    /// [`DeltaMonitor`]s receive an `on_rebase`). The shard count may grow
    /// or shrink; edges whose owner is unchanged never move. Arrival-order
    /// semantics hold across the boundary: updates accepted before this
    /// call land under the old plan, updates accepted after it route under
    /// the new plan, and a queued insert-then-delete still nets to absent.
    pub fn reshard(&self, new: Arc<dyn Partitioner>) -> Result<ReshardReport, ReshardError> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Command::Reshard(new, ack_tx))
            .map_err(|_| ReshardError::Closed)?;
        ack_rx.recv().map_err(|_| ReshardError::Closed)?
    }

    /// Reshard onto a [`DegreePartition`] built from the per-vertex update
    /// load the router has observed — the same plan the automatic
    /// [`RebalancePolicy`] targets, fired on demand. `target_shards`
    /// `None` keeps the current shard count.
    pub fn rebalance(&self, target_shards: Option<usize>) -> Result<ReshardReport, ReshardError> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Command::Rebalance(target_shards, ack_tx))
            .map_err(|_| ReshardError::Closed)?;
        ack_rx.recv().map_err(|_| ReshardError::Closed)?
    }

    /// The latest published coordinated cut (cut 0 until the first
    /// [`Self::epoch_cut`]). Never blocks beyond an `Arc` swap.
    pub fn snapshot(&self) -> Arc<ClusterSnapshot> {
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        self.shared.snapshot.lock().clone()
    }

    /// Run a read against the latest published cut — reads never queue
    /// behind updates.
    pub fn query<R>(&self, f: impl FnOnce(&ClusterSnapshot) -> R) -> R {
        f(&self.snapshot())
    }

    /// Catch a delta reader up from cut number `cut`: the merged per-cut
    /// [`SnapshotDelta`] chain when the cluster ring still covers it (one
    /// delta per coordinated cut, epoch = cut number), or the latest full
    /// cut to rebase on when the reader lagged past
    /// [`ClusterConfig::delta_log_capacity`] cuts (or a shard ring was
    /// outrun between cuts). Never blocks beyond the log lock.
    pub fn deltas_since(&self, cut: u64) -> DeltaCatchUp<Arc<ClusterSnapshot>> {
        let chain = self.shared.delta_log.lock().deltas_since(cut);
        match chain {
            Some(chain) => DeltaCatchUp::Deltas(chain),
            None => DeltaCatchUp::Snapshot(self.shared.snapshot.lock().clone()),
        }
    }

    /// Coordinate a globally consistent epoch cut: every update accepted by
    /// any handle *before* this call is reflected in the returned snapshot
    /// (the router forwards its residue, then barriers every shard).
    /// Updates enqueued concurrently by other producers may be included
    /// too; none accepted after the ack are.
    pub fn epoch_cut(&self) -> Result<Arc<ClusterSnapshot>, ClusterClosed> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Command::Cut(ack_tx))
            .map_err(|_| ClusterClosed)?;
        ack_rx.recv().map_err(|_| ClusterClosed)
    }

    /// Fault injection: kill `shard`'s worker mid-stream — no drain, no
    /// final flush ([`StreamingService::inject_failure`]). Returns
    /// `Ok(true)` when the kill landed, `Ok(false)` when the shard was out
    /// of range (logged, counted as a worker error) or already dead. With
    /// [`ClusterConfig::recovery`] set the router detects the corpse at the
    /// next touch (a forwarded burst, cut, or reshard) and respawns it from
    /// the latest checkpoint; without it, cuts degrade to the dead shard's
    /// last published snapshot. Test/chaos hook — see also
    /// [`ClusterConfig::fault`] for the declarative variant.
    pub fn kill_shard(&self, shard: usize) -> Result<bool, ClusterClosed> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Command::Kill(shard, ack_tx))
            .map_err(|_| ClusterClosed)?;
        ack_rx.recv().map_err(|_| ClusterClosed)
    }

    /// Current cluster metrics; fetching per-shard service metrics round-
    /// trips through the router, so this queues behind in-flight updates.
    pub fn metrics(&self) -> Result<ClusterMetrics, ClusterClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Command::Stats(reply_tx))
            .map_err(|_| ClusterClosed)?;
        let shards = reply_rx.recv().map_err(|_| ClusterClosed)?;
        Ok(self.assemble_metrics(shards))
    }

    fn assemble_metrics(&self, shards: Vec<gpma_service::ServiceMetrics>) -> ClusterMetrics {
        let router = self.shared.router.lock().clone();
        let (policy, num_shards, partition_version) = {
            let p = self.shared.partition.lock();
            (
                p.plan().name().to_string(),
                p.plan().num_shards(),
                p.version(),
            )
        };
        ClusterMetrics {
            num_shards,
            policy,
            partition_version,
            cuts: self.shared.cuts.load(Ordering::Relaxed),
            latest_cut: self.shared.snapshot.lock().cut(),
            queue_depth: self.tx.len(),
            ingested_inserts: self.shared.ingested_inserts.load(Ordering::Relaxed),
            ingested_deletes: self.shared.ingested_deletes.load(Ordering::Relaxed),
            dropped_updates: self.shared.dropped_updates.load(Ordering::Relaxed),
            queries: self.shared.queries.load(Ordering::Relaxed),
            elapsed_secs: self.shared.started.elapsed().as_secs_f64(),
            routed: router.routed,
            sub_batches: router.sub_batches,
            transfer: router.transfer,
            retired_transfer: router.retired_transfer,
            cut_edges: router.cut_edges,
            cancelled_inserts: router.cancelled_inserts,
            delta_fallbacks: self.shared.delta_fallbacks.load(Ordering::Relaxed),
            worker_errors: self.shared.worker_errors.load(Ordering::Relaxed),
            reshard_count: router.reshard_count,
            migrated_edges: router.migrated_edges,
            migration_bytes: router.migration_bytes,
            migration_pause_secs: router.migration_pause_secs,
            migration_background_secs: router.migration_background_secs,
            recoveries: router.recoveries,
            recovery_secs: router.recovery_secs,
            recovery_replayed_deltas: router.recovery_replayed_deltas,
            recovery_replayed_updates: router.recovery_replayed_updates,
            recovery_snapshot_fallbacks: router.recovery_snapshot_fallbacks,
            checkpoints_taken: router.checkpoints_taken,
            checkpoint_bytes: router.checkpoint_bytes,
            shards,
        }
    }

    /// The cluster-wide telemetry registry: per-stage latency histograms
    /// (ingest, flush, routing, cut, reshard, recovery) plus the bounded
    /// event timeline. One registry serves the router and every shard
    /// worker, so stage histograms aggregate cluster-wide and survive
    /// shard respawns and reshards.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.shared.obs
    }

    /// The one-line [`ClusterMetrics`] summary followed by the per-stage
    /// latency table — the human-readable health readout. Queues behind
    /// in-flight updates like [`Self::metrics`].
    pub fn metrics_report(&self) -> Result<String, ClusterClosed> {
        let m = self.metrics()?;
        Ok(format!("{m}\n{}", self.shared.obs.render_table()))
    }

    /// The full telemetry dump as JSON: every stage histogram's summary
    /// statistics plus the buffered event timeline. Machine-readable
    /// counterpart of [`Self::metrics_report`]; see also
    /// [`gpma_obs::Registry::render_prometheus`] via [`Self::obs`].
    pub fn obs_dump(&self) -> String {
        self.shared.obs.render_json()
    }

    /// Stop the cluster: drain the router queue, forward all residue, take
    /// a final coordinated cut, shut every shard service down and hand all
    /// reports back. Outstanding [`ClusterHandle`]s get [`ClusterClosed`]
    /// afterwards. Quiesce producer threads first (same contract as
    /// [`StreamingService::shutdown`]).
    pub fn shutdown(mut self) -> ClusterReport {
        let shard_reports = match self.stop_router().expect("cluster router already stopped") {
            Ok(reports) => reports,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let delta_monitors = match self.delta_monitors.take().map(|h| h.join()) {
            Some(Ok(monitors)) => monitors,
            Some(Err(_)) => {
                eprintln!("gpma-cluster: delta-monitor thread panicked; results discarded");
                Vec::new()
            }
            None => Vec::new(),
        };
        let metrics =
            self.assemble_metrics(shard_reports.iter().map(|r| r.metrics.clone()).collect());
        ClusterReport {
            final_snapshot: self.shared.snapshot.lock().clone(),
            metrics,
            shard_reports,
            delta_monitors,
        }
    }

    fn stop_router(&mut self) -> Option<std::thread::Result<Vec<ServiceReport>>> {
        let router = self.router.take()?;
        let _ = self.tx.send(Command::Shutdown);
        Some(router.join())
    }
}

#[cfg(feature = "audit")]
impl GraphCluster {
    /// Coordinate a fresh epoch cut and cross-check it against the
    /// per-shard snapshots it was assembled from: shard count and vertex
    /// space match the active plan, every edge sits on the shard the plan
    /// owns it to, endpoints stay inside the vertex space, and the merged
    /// view is strictly key-sorted (shards are edge-disjoint). Returns the
    /// validated cut. Assumes no reshard runs concurrently — a plan swap
    /// between the cut and the check makes ownership fail spuriously.
    pub fn audit_cut(&self) -> Result<Arc<ClusterSnapshot>, gpma_core::AuditError> {
        use gpma_core::AuditError;
        let snap = self
            .epoch_cut()
            .map_err(|_| AuditError::Cluster("cluster closed mid-audit".into()))?;
        let plan = self.partitioner();
        if snap.num_shards() != plan.num_shards() {
            return Err(AuditError::Cluster(format!(
                "cut {} has {} shard snapshots, plan has {} shards",
                snap.cut(),
                snap.num_shards(),
                plan.num_shards()
            )));
        }
        let nv = plan.num_vertices();
        if snap.num_vertices() != nv {
            return Err(AuditError::Cluster(format!(
                "cut {} spans {} vertices, plan spans {nv}",
                snap.cut(),
                snap.num_vertices()
            )));
        }
        for (i, shard) in snap.shards().iter().enumerate() {
            for e in shard.edges() {
                if e.src >= nv || e.dst >= nv {
                    return Err(AuditError::Cluster(format!(
                        "shard {i} holds out-of-range edge ({}, {})",
                        e.src, e.dst
                    )));
                }
                let owner = plan.shard_of_edge(e.src, e.dst);
                if owner != i {
                    return Err(AuditError::Cluster(format!(
                        "edge ({}, {}) resident on shard {i} but owned by \
                         shard {owner} under plan {}",
                        e.src,
                        e.dst,
                        plan.name()
                    )));
                }
            }
        }
        let merged = snap.merged_edges();
        if let Some(w) = merged.windows(2).find(|w| w[0].key() >= w[1].key()) {
            return Err(AuditError::Cluster(format!(
                "cut {} holds duplicate or unsorted key {:#x} across shards",
                snap.cut(),
                w[1].key()
            )));
        }
        if self.shared.snapshot.lock().cut() < snap.cut() {
            return Err(AuditError::Cluster(format!(
                "cut {} was never published as the latest snapshot",
                snap.cut()
            )));
        }
        Ok(snap)
    }
}

impl Drop for GraphCluster {
    fn drop(&mut self) {
        // Mirror StreamingService::drop: never re-panic out of Drop.
        if let Some(Err(_)) = self.stop_router() {
            eprintln!("gpma-cluster: router thread panicked; state discarded");
        }
        // The router's exit dropped the cut sender; the monitor thread (if
        // still held) drains its queue and finishes.
        if let Some(m) = self.delta_monitors.take() {
            let _ = m.join();
        }
    }
}

/// Build one shard's service: simulated device, GPMA+ system, streaming
/// facade — the single recipe both the spawn path and the reshard
/// scale-out path use, so reshard-created shards can never silently
/// diverge from spawn-created ones.
fn spawn_shard_service(
    shard: usize,
    cfg: &ClusterConfig,
    device_cfg: &DeviceConfig,
    num_vertices: u32,
    edges: &[Edge],
    obs: &Arc<ObsRegistry>,
) -> (StreamingService, Arc<GraphSnapshot>) {
    let dev = Device::named(device_cfg.clone(), format!("shard{shard}"));
    let sys = DynamicGraphSystem::new(dev, num_vertices, edges, cfg.flush_threshold);
    let initial = Arc::new(sys.snapshot());
    // Every shard worker records into the one cluster registry, so flush
    // histograms aggregate cluster-wide and survive shard respawns.
    let svc = StreamingService::spawn_instrumented(
        ServiceConfig {
            queue_capacity: cfg.shard_queue_capacity,
            delta_log_capacity: cfg.shard_delta_log_capacity,
            ..Default::default()
        },
        sys,
        Vec::new(),
        Vec::new(),
        obs.clone(),
        shard as u32,
    );
    (svc, initial)
}

/// Events the router publishes to the cluster's delta-monitor thread.
enum CutEvent {
    /// A cut whose inter-cut delta chain was fully assembled.
    Delta(Arc<SnapshotDelta>),
    /// A cut that outran a shard's delta ring: monitors must rebase on the
    /// full merged state.
    Rebase(Arc<ClusterSnapshot>),
}

/// The cluster delta-monitor thread: rebase on the initial state, then feed
/// each coordinated cut's merged delta (or a forced rebase) in cut order.
fn run_cut_monitors(
    initial: Arc<ClusterSnapshot>,
    rx: Receiver<CutEvent>,
    mut monitors: Vec<Box<dyn DeltaMonitor>>,
) -> Vec<Box<dyn DeltaMonitor>> {
    let flat = initial.to_graph_snapshot();
    for m in monitors.iter_mut() {
        m.on_rebase(&flat);
    }
    while let Ok(event) = rx.recv() {
        match event {
            CutEvent::Delta(delta) => {
                for m in monitors.iter_mut() {
                    m.on_delta(&delta);
                }
            }
            CutEvent::Rebase(cut) => {
                let flat = cut.to_graph_snapshot();
                for m in monitors.iter_mut() {
                    m.on_rebase(&flat);
                }
            }
        }
    }
    monitors
}

/// Cap on background copy/replay rounds one reshard may spend chasing a
/// hot ingest stream before it settles anyway — the final barrier makes
/// the delta chains static and the settle replay drains them exactly, so
/// the cap only bounds how long a reshard may defer its plan swap.
const COW_MAX_ROUNDS: u64 = 256;

/// Cap on the post-barrier settle replay. With ingest paused the chains
/// are static and one round normally drains them; extra rounds only run
/// when a ring outrun or mid-settle recovery forces a frozen-cut resync.
const COW_SETTLE_ROUNDS: u64 = 64;

/// Cap on pre-settle barrier reissues. Each reissue flushes the residue
/// the previous round's barrier itself produced; on a quiet stream two or
/// three suffice and the settle then sees empty queues. Under saturating
/// ingest the loop would never converge — the cap bounds it and hands the
/// (one-flush) residue to the paused settle.
const COW_PRESETTLE_REISSUES: u32 = 16;

/// In-flight state of one copy-on-write reshard (owned by `reshard`'s
/// stack, threaded through the background-round helpers).
struct CowState {
    /// The target plan the background rounds stage toward.
    new: Arc<dyn Partitioner>,
    /// Shard count before the reshard (sources are `0..old_n`).
    old_n: usize,
    /// Shard count after (destinations are `0..new_n`).
    new_n: usize,
    /// Per-destination image of every edge shipped there so far, keyed by
    /// edge key — what the final barrier diffs the true move set against.
    staged: Vec<BTreeMap<u64, Edge>>,
    /// Per-source replay cursor: the shard-local epoch through which the
    /// delta chain has been split and shipped.
    handled: Vec<u64>,
    /// Per-destination staged-insert counts (the modeled DMA charges).
    arrived: Vec<usize>,
    /// Edges shipped by frozen-cut copy rounds.
    copied: u64,
    /// Updates shipped by delta-chain replay rounds.
    replayed: u64,
    /// Wall clock actually spent copying/replaying (ingest kept flowing).
    background: Duration,
}

/// One in-flight non-blocking cut round: barriers issued to every shard,
/// acks collected as the workers reach them — producers never stall on a
/// cluster-wide quiesce.
struct PendingCut {
    /// Every `epoch_cut` caller waiting on this round.
    acks: Vec<Sender<Arc<ClusterSnapshot>>>,
    /// Per-shard barrier ack receivers (`None` = service already closed
    /// when the barrier was issued).
    waits: Vec<Option<Receiver<Arc<GraphSnapshot>>>>,
    /// Collected per-shard barrier snapshots.
    got: Vec<Option<Arc<GraphSnapshot>>>,
    /// A shard degraded to its aligned published snapshot: the round's
    /// barrier wall is not representative, so it is not recorded.
    degraded: bool,
    /// When the round's barriers were issued.
    t0: Instant,
}

/// Everything the router loop threads through its helpers.
struct Router {
    handles: Vec<IngestHandle>,
    services: Vec<StreamingService>,
    part: PartitionEpoch,
    shared: Arc<Shared>,
    cfg: ClusterConfig,
    device_cfg: DeviceConfig,
    link: Pcie,
    /// Per-shard sub-batches under assembly (deletions before insertions,
    /// the framework batch convention).
    pending: Vec<UpdateBatch>,
    pending_len: usize,
    /// Counters accumulated lock-free in the per-edge routing loop and
    /// published under the single metrics lock [`Self::forward`] already
    /// takes per burst (the same rule the service crate applies to its
    /// ingest hot path).
    local_cut_edges: u64,
    local_cancelled: u64,
    /// Per-source-vertex routed update counts — the observed degrees a
    /// [`DegreePartition`] rebalance target is built from. Cumulative
    /// across reshards (the estimate only sharpens).
    observed: Vec<u64>,
    /// Each shard's local epoch at the previous coordinated cut — the
    /// resume points for assembling the next cut's delta chain.
    last_cut_epochs: Vec<u64>,
    /// Feed to the cluster delta-monitor thread, when one exists.
    cut_tx: Option<Sender<CutEvent>>,
    /// Durability/failover policy ([`ClusterConfig::recovery`]); `None`
    /// disables detection, checkpointing and the replay logs entirely.
    recovery: Option<RecoveryPolicy>,
    /// One-shot fault plan ([`ClusterConfig::fault`]); taken when it fires.
    fault: Option<FaultPlan>,
    /// Updates routed over the cluster lifetime — never reset (unlike the
    /// per-plan skew window in [`RouterCounters::routed`]); the fault
    /// plan's trigger clock.
    lifetime_routed: u64,
    /// Per-shard sub-batches forwarded since that shard's last checkpoint
    /// (maintained only under a recovery policy). Re-ingested verbatim into
    /// a respawned worker after its checkpoint + ring-gap state: replaying
    /// a suffix the restored state already includes is idempotent, because
    /// FIFO order makes each key's final presence the batch sequence's last
    /// word on it.
    replay: Vec<Vec<UpdateBatch>>,
    /// Set by a recovery: the respawned incarnation's epochs restart at 0,
    /// so the next cut's delta cannot be stitched across the crash — force
    /// that one cut to publish as a full-snapshot rebase.
    force_rebase: bool,
    /// The non-blocking cut round in flight, if any.
    pending_cut: Option<PendingCut>,
    /// `epoch_cut` callers that arrived while a round was in flight; they
    /// join the *next* round (their pre-cut updates may not have been
    /// forwarded when the current round's barriers were issued).
    queued_cut_acks: Vec<Sender<Arc<ClusterSnapshot>>>,
    /// Cut/reshard/rebalance commands that arrived during a copy-on-write
    /// reshard; run in arrival order right after it completes.
    deferred: VecDeque<Command>,
    /// True while a copy-on-write reshard is in flight (gates the
    /// `during_reshard` fault plan and the recovery resync hook).
    cow_active: bool,
    /// A recovery (or an outrun source ring) invalidated the in-flight
    /// reshard's replay cursors: the next background round must be a full
    /// frozen-cut resync instead of a delta replay.
    cow_sync_dirty: bool,
    /// Shards respawned while `cow_active` — their staged image must be
    /// rebuilt from their actual settled state at the next resync (staged
    /// arrivals queued but unflushed at death are not in the replay log).
    cow_recovered: Vec<usize>,
    /// The reshard already swapped the plan and is retiring the movers
    /// from their old owners in the background: recovery must *not* queue
    /// a staged resync (the sources' delta streams now carry retraction
    /// deletions that would replay as destination deletes) — the router
    /// replay log, which records every internal ship, repairs a death in
    /// this window instead.
    cow_retiring: bool,
    /// A `Shutdown` absorbed mid-reshard; honored as soon as the reshard
    /// completes.
    shutdown_pending: bool,
}

impl Router {
    /// Buffer one routed update, enforcing arrival-order semantics within
    /// the pending window (a deletion cancels a same-key pending insert on
    /// its shard before being buffered).
    fn route(&mut self, cmd: Command) {
        // One `router.route` sample per routed command: partition lookup,
        // cut-edge accounting and pending-window cancellation.
        let obs = self.shared.obs.clone();
        let _route = obs.span(Stage::RouteBatch);
        match cmd {
            Command::Insert(e) => {
                self.route_insert(e);
                self.pending_len += 1;
            }
            Command::Delete(e) => {
                self.route_delete(e);
                self.pending_len += 1;
            }
            Command::Batch(b) => {
                // Batch convention: its deletions precede its insertions,
                // so route deletions first (cancelling only *earlier*
                // pending inserts, never this batch's own).
                self.pending_len += b.len();
                for e in &b.deletions {
                    self.route_delete(*e);
                }
                for e in b.insertions {
                    self.route_insert(e);
                }
            }
            Command::Cut(_)
            | Command::Reshard(..)
            | Command::Rebalance(..)
            | Command::Stats(_)
            | Command::Kill(..)
            | Command::Shutdown => {
                // Control commands are dispatched by the router loop, not
                // routed; reaching here is a dispatch bug — but the router
                // thread must not panic over it (a poisoned router takes
                // the whole cluster down). Log, count, drop.
                self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("gpma-cluster: control command reached the routing stage; dropped");
            }
        }
    }

    fn route_insert(&mut self, e: Edge) {
        let s = self.part.plan().shard_of_edge(e.src, e.dst);
        if self.part.plan().is_cut_edge(e.src, e.dst) {
            self.local_cut_edges += 1;
        }
        self.observed[e.src as usize] += 1;
        self.pending[s].insertions.push(e);
    }

    fn route_delete(&mut self, e: Edge) {
        let s = self.part.plan().shard_of_edge(e.src, e.dst);
        self.observed[e.src as usize] += 1;
        let key = e.key();
        let before = self.pending[s].insertions.len();
        self.pending[s].insertions.retain(|p| p.key() != key);
        self.local_cancelled += (before - self.pending[s].insertions.len()) as u64;
        self.pending[s].deletions.push(e);
    }

    /// The one-shot fault plan fires right after the burst that crossed
    /// its threshold: the victim's queued updates die unflushed, exactly
    /// like a process kill between flushes. A `during_reshard` plan stays
    /// armed past its threshold and fires at the first check inside a
    /// copy-on-write window instead.
    fn maybe_fire_fault(&mut self) {
        let Some(plan) = self.fault else {
            return;
        };
        if self.lifetime_routed < plan.after_routed_updates
            || (plan.during_reshard && !self.cow_active)
        {
            return;
        }
        self.fault = None;
        if plan.kill_shard < self.services.len() {
            let _ = self.services[plan.kill_shard].inject_failure();
        } else {
            self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "gpma-cluster: fault plan names shard {} of {}; ignored",
                plan.kill_shard,
                self.services.len()
            );
        }
    }

    /// Ship every non-empty per-shard sub-batch: record one modeled DMA per
    /// sub-batch against that shard's ledger (all accounting under one lock
    /// per burst), then forward through the shards' (blocking) ingest
    /// handles — shard backpressure stalls the router, which fills the
    /// cluster queue, which stalls producers.
    fn forward(&mut self) {
        if self.pending_len == 0 {
            // Nothing to ship, but an armed `during_reshard` fault plan
            // must still get its shot: a copy-on-write window with no
            // client traffic in flight would otherwise never fire it.
            self.maybe_fire_fault();
            return;
        }
        let obs = self.shared.obs.clone();
        let fwd_span = obs.span(Stage::Forward);
        let mut outgoing: Vec<(usize, UpdateBatch)> = Vec::with_capacity(self.pending.len());
        for (i, slot) in self.pending.iter_mut().enumerate() {
            if !slot.is_empty() {
                outgoing.push((i, std::mem::take(slot)));
            }
        }
        {
            let mut c = self.shared.router.lock();
            c.cut_edges += std::mem::take(&mut self.local_cut_edges);
            c.cancelled_inserts += std::mem::take(&mut self.local_cancelled);
            for (i, b) in &outgoing {
                c.routed[*i] += b.len() as u64;
                c.sub_batches[*i] += 1;
                c.transfer[*i].record(&self.link, b.len() * BYTES_PER_UPDATE);
            }
        }
        if self.recovery.is_some() {
            // Log before sending: a batch whose send fails (dead shard) is
            // recovered from the log, never re-sent inline.
            for (i, b) in &outgoing {
                self.replay[*i].push(b.clone());
            }
        }
        let mut dead: Vec<usize> = Vec::new();
        for (i, b) in outgoing {
            // Unmetered: router-internal traffic must not pollute the
            // client-facing ingest-latency histogram (this whole burst is
            // already timed by the `router.forward` span).
            if self.handles[i].ingest_unmetered(b).is_err() {
                // Without a recovery policy a closed shard only happens
                // mid-teardown; drop silently like any send into a stopping
                // server. With one, a failed send IS the failure detector.
                if self.recovery.is_some() {
                    dead.push(i);
                }
            }
        }
        self.lifetime_routed += self.pending_len as u64;
        self.pending_len = 0;
        // The forward span ends here: fault firing and recovery below are
        // their own pipeline stages, not part of the send fan-out.
        drop(fwd_span);
        self.maybe_fire_fault();
        for i in dead {
            self.recover_shard(i);
        }
    }

    /// Failure detection for shards with no in-flight traffic: probe every
    /// worker and recover the dead ones. Called on the control paths (cut,
    /// reshard) that need all shards answering barriers exactly; no-op
    /// without a recovery policy (PR-6 degraded-cut behavior stands).
    fn ensure_shards_alive(&mut self) {
        if self.recovery.is_none() {
            return;
        }
        // The probe pass is the failure *detection* stage; the recoveries it
        // triggers are timed separately (`recovery.restore` / `.replay`).
        let dead: Vec<usize> = {
            let obs = self.shared.obs.clone();
            let _detect = obs.span(Stage::RecoveryDetect);
            (0..self.services.len())
                .filter(|&i| !self.services[i].is_alive())
                .collect()
        };
        for i in dead {
            self.recover_shard(i);
        }
    }

    /// The failover protocol, one shard at a time:
    ///
    /// 1. **Restore** — decode the latest durable checkpoint for this shard
    ///    slot and fold its trailing delta chain (corrupt/missing
    ///    checkpoints fall through to step 3's snapshot fallback).
    /// 2. **Ring replay** — catch the restored state up through the dead
    ///    worker's surviving delta ring (`deltas_since` on its front
    ///    object), covering every flush after the checkpoint.
    /// 3. **Snapshot fallback** — if the ring was outrun (or step 1 found
    ///    nothing usable), rebase on the dead worker's last *published*
    ///    snapshot instead; counted in
    ///    [`ClusterMetrics::recovery_snapshot_fallbacks`].
    /// 4. **Respawn + log replay** — build a fresh service from the
    ///    recovered edge set (epochs restart at 0), re-ingest this shard's
    ///    replay log (idempotent; covers updates that died unflushed),
    ///    barrier it settled, and swap it into the routing tables.
    /// 5. **Re-checkpoint** — persist the recovered incarnation immediately
    ///    so the store's "latest" always matches the live epoch space, and
    ///    force the next cut to publish as a rebase (cross-incarnation
    ///    deltas cannot be stitched).
    fn recover_shard(&mut self, i: usize) {
        let Some(policy) = self.recovery.clone() else {
            return;
        };
        let obs = self.shared.obs.clone();
        let t0 = Instant::now();
        let nv = self.part.plan().num_vertices();
        let mut fallback = false;
        let mut replayed_deltas = 0u64;

        let restore_span = obs.span(Stage::RecoveryRestore);
        let restored_ckpt: Option<GraphSnapshot> = match policy.store.load_latest(i) {
            Ok(Some(bytes)) => match Checkpoint::decode(&bytes) {
                Ok(ckpt) => Some(ckpt.restore()),
                Err(e) => {
                    self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("gpma-cluster: shard {i} checkpoint corrupt ({e}); falling back");
                    None
                }
            },
            Ok(None) => None,
            Err(e) => {
                self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("gpma-cluster: shard {i} checkpoint load failed ({e}); falling back");
                None
            }
        };
        let dead = &self.services[i];
        let recovered = match restored_ckpt {
            Some(mut state) => match dead.deltas_since(state.epoch()) {
                DeltaCatchUp::Deltas(chain) => {
                    for d in &chain {
                        state = apply_delta(&state, d);
                    }
                    replayed_deltas = chain.len() as u64;
                    state
                }
                DeltaCatchUp::Snapshot(s) => {
                    fallback = true;
                    (*s).clone()
                }
            },
            None => {
                fallback = true;
                (*dead.snapshot()).clone()
            }
        };
        drop(restore_span);

        let replay_span = obs.span(Stage::RecoveryReplay);
        let (svc, _) =
            spawn_shard_service(i, &self.cfg, &self.device_cfg, nv, recovered.edges(), &obs);
        let log = std::mem::take(&mut self.replay[i]);
        let replayed_updates: u64 = log.iter().map(|b| b.len() as u64).sum();
        let h = svc.handle();
        for b in log {
            let _ = h.ingest_unmetered(b);
        }
        if svc.barrier().is_err() {
            // A freshly spawned worker dying inside recovery means the
            // machine itself is failing; record it and keep the cluster up.
            self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("gpma-cluster: shard {i} respawn failed its settling barrier");
        }
        self.handles[i] = svc.handle();
        self.services[i] = svc;
        self.force_rebase = true;
        if self.cow_active && !self.cow_retiring {
            // The respawned incarnation's ring restarts at epoch 0 and any
            // staged arrivals queued (unflushed) at death died with the
            // worker: the in-flight reshard's replay cursor and staged
            // image for this shard are both stale. Force a full frozen-cut
            // resync, rebuilding this shard's staged image from its actual
            // settled state. (Post-swap — `cow_retiring` — the replay log
            // above already re-ingested every internal ship, and a resync
            // would mis-read the sources' retraction deltas as moves.)
            self.cow_sync_dirty = true;
            self.cow_recovered.push(i);
        }
        drop(replay_span);
        obs.event(
            Stage::RecoveryReplay,
            i as u32,
            0,
            EventKind::Recovered,
            t0.elapsed().as_micros() as u64,
        );
        let (saved, bytes_len) = self.save_checkpoint(&policy, i);

        let mut c = self.shared.router.lock();
        c.recoveries += 1;
        c.recovery_secs += t0.elapsed().as_secs_f64();
        c.recovery_replayed_deltas += replayed_deltas;
        c.recovery_replayed_updates += replayed_updates;
        if fallback {
            c.recovery_snapshot_fallbacks += 1;
        }
        if saved {
            c.checkpoints_taken += 1;
            c.checkpoint_bytes += bytes_len;
        }
    }

    /// Encode shard `i`'s current checkpoint and persist it. Returns
    /// `(saved, encoded_bytes)`; a save failure is logged and counted, and
    /// the shard's replay log is trimmed only on success (the log must
    /// reach back to whatever checkpoint recovery would actually load).
    fn save_checkpoint(&mut self, policy: &RecoveryPolicy, i: usize) -> (bool, u64) {
        let obs = self.shared.obs.clone();
        let _save = obs.span(Stage::CheckpointSave);
        let ckpt = self.services[i].checkpoint();
        let epoch = ckpt.epoch();
        let bytes = ckpt.encode();
        match policy.store.save(i, epoch, &bytes) {
            Ok(()) => {
                self.replay[i].clear();
                (true, bytes.len() as u64)
            }
            Err(e) => {
                self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("gpma-cluster: shard {i} checkpoint save failed ({e})");
                (false, 0)
            }
        }
    }

    /// Cut-cadence checkpointing: at every `checkpoint_every_cuts`-th cut
    /// (and the shards are freshly barriered, so each checkpoint captures
    /// exactly the cut state), persist every shard and trim its replay log.
    fn maybe_checkpoint(&mut self, cut: u64) {
        let Some(policy) = self.recovery.clone() else {
            return;
        };
        if !cut.is_multiple_of(policy.checkpoint_every_cuts.max(1)) {
            return;
        }
        let mut taken = 0u64;
        let mut total = 0u64;
        for i in 0..self.services.len() {
            let (saved, n) = self.save_checkpoint(&policy, i);
            if saved {
                taken += 1;
                total += n;
            }
        }
        let mut c = self.shared.router.lock();
        c.checkpoints_taken += taken;
        c.checkpoint_bytes += total;
    }

    /// Barrier every shard and collect the epoch-stamped snapshots. A shard
    /// whose service is found closed (only possible mid-teardown) does not
    /// panic the router: the error is logged, counted in
    /// [`ClusterMetrics::worker_errors`], and the shard's latest published
    /// snapshot — aligned forward to its delta-ring head (`cut.align`) —
    /// stands in, so cuts and reshards complete instead of poisoning the
    /// router thread. Returns whether any shard degraded, so callers can
    /// cancel the barrier-wall sample rather than fold a corpse's failure
    /// latency into the `cut.barrier` histogram.
    fn barrier_all(&self) -> (Vec<Arc<GraphSnapshot>>, bool) {
        let mut degraded = false;
        let snaps = self
            .services
            .iter()
            .enumerate()
            .map(|(i, svc)| match svc.barrier() {
                Ok(snap) => snap,
                Err(_) => {
                    degraded = true;
                    self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "gpma-cluster: shard {i} service closed at barrier; \
                         falling back to its aligned published snapshot"
                    );
                    let obs = self.shared.obs.clone();
                    let _align = obs.span(Stage::CutAlign);
                    svc.frozen_cut()
                }
            })
            .collect();
        (snaps, degraded)
    }

    /// Synchronous coordinated cut — the shutdown path's final cut, where
    /// blocking the router is the point. Live `epoch_cut` requests go
    /// through [`Self::begin_cut`] instead and never stall producers.
    fn cut_sync(&mut self) -> Arc<ClusterSnapshot> {
        let obs = self.shared.obs.clone();
        let t0 = Instant::now();
        let barrier_span = obs.span(Stage::CutBarrier);
        self.forward();
        // `forward` recovers shards whose sends failed; shards that died
        // with no in-flight traffic are only detectable by probing.
        self.ensure_shards_alive();
        let (snaps, degraded) = self.barrier_all();
        if degraded {
            // A corpse's stall is not barrier latency: drop the sample.
            barrier_span.cancel();
        } else {
            drop(barrier_span);
        }
        self.publish_cut(snaps, t0)
    }

    /// Assemble and publish one coordinated cut from barriered (or aligned)
    /// per-shard snapshots, plus its merged delta and cadence checkpoint.
    fn publish_cut(&mut self, snaps: Vec<Arc<GraphSnapshot>>, t0: Instant) -> Arc<ClusterSnapshot> {
        let obs = self.shared.obs.clone();
        let cut = self.shared.cuts.fetch_add(1, Ordering::Relaxed) + 1;
        let snap = {
            let _publish = obs.span(Stage::CutPublish);
            let snap = Arc::new(ClusterSnapshot::new(
                cut,
                self.part.plan().num_vertices(),
                snaps,
            ));
            *self.shared.snapshot.lock() = snap.clone();
            self.publish_cut_delta(cut, &snap);
            self.maybe_checkpoint(cut);
            snap
        };
        obs.event(
            Stage::CutPublish,
            NO_SHARD,
            cut,
            EventKind::Cut,
            t0.elapsed().as_micros() as u64,
        );
        snap
    }

    /// Start (or queue into) a non-blocking cut round. The barrier command
    /// is FIFO-ordered behind every update already forwarded to each shard,
    /// so the per-shard barrier snapshots form an exact global frontier
    /// even though their acks arrive at different times — the router keeps
    /// absorbing and forwarding ingest while [`Self::poll_pending_cut`]
    /// collects them.
    fn begin_cut(&mut self, ack: Sender<Arc<ClusterSnapshot>>) {
        if self.pending_cut.is_some() {
            // This caller's pre-cut updates may not have been forwarded
            // when the in-flight round's barriers were issued: it joins
            // the next round, started the moment the current one resolves.
            self.queued_cut_acks.push(ack);
            return;
        }
        self.start_cut_round(vec![ack]);
    }

    /// Forward residue and issue one barrier to every shard, registering
    /// the round as [`Router::pending_cut`].
    fn start_cut_round(&mut self, acks: Vec<Sender<Arc<ClusterSnapshot>>>) {
        self.forward();
        self.ensure_shards_alive();
        let t0 = Instant::now();
        let mut degraded = false;
        let mut waits: Vec<Option<Receiver<Arc<GraphSnapshot>>>> =
            Vec::with_capacity(self.services.len());
        for (i, svc) in self.services.iter().enumerate() {
            match svc.barrier_async() {
                Ok(rx) => waits.push(Some(rx)),
                Err(_) => {
                    degraded = true;
                    self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "gpma-cluster: shard {i} service closed at barrier; \
                         falling back to its aligned published snapshot"
                    );
                    waits.push(None);
                }
            }
        }
        let n = waits.len();
        self.pending_cut = Some(PendingCut {
            acks,
            waits,
            got: vec![None; n],
            degraded,
            t0,
        });
        self.poll_pending_cut(false);
    }

    /// Collect whatever barrier acks have arrived for the in-flight cut
    /// round; when the round completes, publish the cut, answer every
    /// waiter, and start the next round if callers queued up meanwhile.
    /// With `block` set, parks on each outstanding ack (the resolve path).
    fn poll_pending_cut(&mut self, block: bool) {
        loop {
            let Some(mut pc) = self.pending_cut.take() else {
                return;
            };
            let mut all = true;
            for i in 0..pc.waits.len() {
                if pc.got[i].is_some() {
                    continue;
                }
                let filled = match &pc.waits[i] {
                    Some(rx) => {
                        if block {
                            rx.recv().ok()
                        } else {
                            match rx.try_recv() {
                                Ok(s) => Some(s),
                                Err(TryRecvError::Empty) => {
                                    all = false;
                                    continue;
                                }
                                Err(TryRecvError::Disconnected) => None,
                            }
                        }
                    }
                    None => None,
                };
                pc.got[i] = Some(match filled {
                    Some(s) => s,
                    None => {
                        // The worker died mid-barrier (its ack channel
                        // dropped): align its latest published snapshot to
                        // its ring head and degrade, like the sync path.
                        pc.degraded = true;
                        self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
                        let obs = self.shared.obs.clone();
                        let _align = obs.span(Stage::CutAlign);
                        self.services[i].frozen_cut()
                    }
                });
            }
            if !all {
                self.pending_cut = Some(pc);
                return;
            }
            if !pc.degraded {
                self.shared
                    .obs
                    .record_duration(Stage::CutBarrier, pc.t0.elapsed());
            }
            let snaps: Vec<Arc<GraphSnapshot>> = pc.got.into_iter().flatten().collect();
            let snap = self.publish_cut(snaps, pc.t0);
            for ack in pc.acks {
                let _ = ack.send(snap.clone());
            }
            if self.queued_cut_acks.is_empty() {
                return;
            }
            let next = std::mem::take(&mut self.queued_cut_acks);
            self.start_cut_round(next);
            // start_cut_round polled once already; blocking callers keep
            // draining rounds, the router loop polls again next pass.
            if !block {
                return;
            }
        }
    }

    /// Park until no cut round is in flight (reshard entry and shutdown —
    /// the two points that need the cut pipeline drained).
    fn resolve_pending_cut(&mut self) {
        while self.pending_cut.is_some() {
            self.poll_pending_cut(true);
        }
    }

    /// Ship the frozen-cut copy: align every source shard to its delta-ring
    /// head (no flush forced — `cut.align`), compute the boundary-crossing
    /// edge set under the new plan, and ship the diff against what is
    /// already staged at each destination. This is also the resync path
    /// after a recovery or an outrun source ring; a recovered shard's
    /// staged image is first rebuilt from its *actual* settled state,
    /// because staged arrivals that were still queued at its death are
    /// gone — the diff then re-ships them (idempotent upserts, and
    /// retractions of absent keys are no-ops).
    fn cow_full_sync(&mut self, cow: &mut CowState) {
        let t = Instant::now();
        let obs = self.shared.obs.clone();
        let old_plan = self.part.plan().clone();
        for d in std::mem::take(&mut self.cow_recovered) {
            if d >= cow.new_n {
                // A recovered source with no destination role under the
                // new plan: nothing was ever staged at it.
                continue;
            }
            let snap = {
                let _align = obs.span(Stage::CutAlign);
                self.services[d].frozen_cut()
            };
            cow.staged[d] = snap
                .edges()
                .iter()
                .filter(|e| old_plan.shard_of_edge(e.src, e.dst) != d)
                .map(|e| (e.key(), *e))
                .collect();
        }
        let mut desired: Vec<BTreeMap<u64, Edge>> = vec![BTreeMap::new(); cow.new_n];
        for s in 0..cow.old_n {
            let snap = {
                let _align = obs.span(Stage::CutAlign);
                self.services[s].frozen_cut()
            };
            cow.handled[s] = snap.epoch();
            for e in snap.edges() {
                if old_plan.shard_of_edge(e.src, e.dst) != s {
                    // A staged copy parked here by an earlier round — its
                    // source still owns the original.
                    continue;
                }
                let to = cow.new.shard_of_edge(e.src, e.dst);
                if to != s && to < cow.new_n {
                    desired[to].insert(e.key(), *e);
                }
            }
        }
        for (d, want) in desired.iter().enumerate() {
            let mut batch = UpdateBatch::default();
            for k in cow.staged[d].keys() {
                if !want.contains_key(k) {
                    let (src, dst) = gpma_graph::decode_key(*k);
                    batch.deletions.push(Edge::new(src, dst));
                }
            }
            for (k, e) in want {
                if cow.staged[d].get(k) != Some(e) {
                    batch.insertions.push(*e);
                }
            }
            if !batch.is_empty() {
                cow.arrived[d] += batch.insertions.len();
                cow.copied += batch.len() as u64;
                if self.recovery.is_some() {
                    // Internal ships enter the replay log like client
                    // batches: a destination dying with this queued but
                    // unapplied replays it from the log on respawn.
                    self.replay[d].push(batch.clone());
                }
                let _ = self.handles[d].ingest_unmetered(batch);
            }
        }
        cow.staged = desired;
        self.cow_sync_dirty = false;
        cow.background += t.elapsed();
    }

    /// One background replay round: split each source's in-flight delta
    /// chain across the new partition boundary and ship the movers to
    /// their destinations — one batch per delta, because a batch applies
    /// deletions before insertions and folding a chain would reorder an
    /// insert-then-delete of the same key. Returns the updates shipped;
    /// an outrun source ring flags a full resync for the next round
    /// instead.
    fn cow_replay_round(&mut self, cow: &mut CowState) -> u64 {
        let t = Instant::now();
        let obs = self.shared.obs.clone();
        let _replay = obs.span(Stage::ReshardReplay);
        let mut shipped = 0u64;
        let mut scratch: Vec<UpdateBatch> = vec![UpdateBatch::default(); cow.new_n];
        for s in 0..cow.old_n {
            match self.services[s].deltas_since(cow.handled[s]) {
                DeltaCatchUp::Deltas(chain) => {
                    for dlt in &chain {
                        if split_delta_moves(dlt, s, &*cow.new, &mut scratch) == 0 {
                            continue;
                        }
                        for (d, b) in scratch.iter_mut().enumerate() {
                            if b.is_empty() {
                                continue;
                            }
                            for e in &b.insertions {
                                cow.staged[d].insert(e.key(), *e);
                            }
                            for e in &b.deletions {
                                cow.staged[d].remove(&e.key());
                            }
                            cow.arrived[d] += b.insertions.len();
                            shipped += b.len() as u64;
                            let b = std::mem::take(b);
                            if self.recovery.is_some() {
                                self.replay[d].push(b.clone());
                            }
                            let _ = self.handles[d].ingest_unmetered(b);
                        }
                    }
                    if let Some(last) = chain.last() {
                        cow.handled[s] = last.epoch();
                    }
                }
                DeltaCatchUp::Snapshot(_) => {
                    // The source flushed past its ring since the last
                    // round: the cursor is gone, resync from a fresh
                    // frozen cut.
                    self.cow_sync_dirty = true;
                }
            }
        }
        cow.replayed += shipped;
        cow.background += t.elapsed();
        shipped
    }

    /// Absorb one command mid-reshard: data keeps routing under the old
    /// plan (pre-swap; the post-swap retire window routes under the new
    /// one), stats and kills serve inline, cut/plan changes defer to right
    /// after the marker cut (a mid-copy barrier would observe staged
    /// duplicates, a mid-retire one un-retracted movers, and plan changes
    /// cannot nest), and shutdown is honored once the reshard completes.
    fn cow_absorb(&mut self, cmd: Command) {
        match cmd {
            Command::Insert(_) | Command::Delete(_) | Command::Batch(_) => self.route(cmd),
            Command::Stats(reply) => {
                self.forward();
                let _ = reply.send(self.services.iter().map(|s| s.metrics()).collect());
            }
            Command::Kill(shard, ack) => self.kill(shard, ack),
            Command::Shutdown => self.shutdown_pending = true,
            other @ (Command::Cut(_) | Command::Reshard(..) | Command::Rebalance(..)) => {
                self.deferred.push_back(other);
            }
        }
    }

    /// Kill one shard's worker (fault injection), acking whether it landed.
    fn kill(&mut self, shard: usize, ack: Sender<bool>) {
        let landed = if shard < self.services.len() {
            self.services[shard].inject_failure().is_ok()
        } else {
            self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "gpma-cluster: kill_shard({shard}) out of range ({} shards); ignored",
                self.services.len()
            );
            false
        };
        let _ = ack.send(landed);
    }

    /// The live copy-on-write reshard protocol — ingest keeps flowing
    /// through everything except the final settle:
    ///
    /// 1. **Frozen-cut copy** (background) — align every source shard's
    ///    published snapshot to its delta-ring head (no flush forced) and
    ///    ship each edge whose owner changes under the new plan to its
    ///    destination, while the router keeps absorbing and forwarding
    ///    ingest under the *old* plan.
    /// 2. **Delta replay rounds** (background) — each source's in-flight
    ///    delta chain is split across the new partition boundary
    ///    ([`split_delta_moves`]) and the boundary-crossing updates replay
    ///    onto their destinations, one batch per delta so arrival order
    ///    survives. Rounds repeat, interleaved with live ingest, until
    ///    the chains run dry (or [`COW_MAX_ROUNDS`]).
    /// 3. **Settle + swap** (the only pause, bounded by one flush of the
    ///    trailing residue) — barrier every shard so the delta chains go
    ///    static, replay the post-barrier residue onto the staged images,
    ///    enqueue the movers' retraction from their old owners and swap
    ///    the plan atomically.
    /// 4. **Background retire** — the sources apply their retraction
    ///    deletions while ingest already flows under the new plan; the
    ///    snapshot-style epoch marker publishes once they settle, and the
    ///    deferred cuts run against it.
    ///
    /// After the final replay the staged images *are* the mover set: the
    /// frozen-cut copy plus the complete delta chains reconstruct each
    /// shard's boundary-crossing edges exactly, so no full-state diff runs
    /// inside the pause. Whenever that reconstruction breaks — a delta
    /// ring outruns a reader, a shard is recovered mid-copy — the dirty
    /// flag forces a full frozen-cut resync (staged arrivals that died
    /// queued are re-shipped idempotently), so a kill-during-COW recovers
    /// exactly. Cuts requested mid-reshard are deferred to right after the
    /// swap. Arrival-order semantics hold across the boundary: client
    /// updates route under the old plan until the swap, and the marker cut
    /// rebases every delta reader past it.
    fn reshard(
        &mut self,
        new: Arc<dyn Partitioner>,
        auto: bool,
        rx: &Receiver<Command>,
    ) -> Result<ReshardReport, ReshardError> {
        let nv = self.part.plan().num_vertices();
        if new.num_vertices() != nv {
            return Err(ReshardError::VertexMismatch {
                expected: nv,
                got: new.num_vertices(),
            });
        }
        // A cut round still in flight would barrier against shards the
        // copy below floods with internal traffic: drain it first.
        self.resolve_pending_cut();
        let from_policy = self.part.plan().name().to_string();
        let old_plan = self.part.plan().clone();
        let new_n = new.num_shards().max(1);
        let old_n = self.services.len();
        let obs = self.shared.obs.clone();
        obs.event(Stage::ReshardQuiesce, NO_SHARD, 0, EventKind::ReshardBegin, 0);
        // Producer sends completing from here to the end of the reshard are
        // additionally sampled into `ingest.reshard` (see ClusterHandle).
        self.shared.reshard_active.store(true, Ordering::Relaxed);
        self.cow_active = true;
        self.cow_sync_dirty = false;
        self.cow_recovered.clear();
        let mut cow = CowState {
            new: new.clone(),
            old_n,
            new_n,
            staged: vec![BTreeMap::new(); new_n],
            handled: vec![0; old_n],
            arrived: vec![0; new_n],
            copied: 0,
            replayed: 0,
            background: Duration::ZERO,
        };

        // Phase A: grow fresh services for new shard ids, then ship the
        // frozen-cut copy. Ingest is not paused — the router returns to
        // absorbing traffic between every background round below.
        {
            let _migrate = obs.span(Stage::ReshardMigrate);
            for i in old_n..new_n {
                let (svc, _) =
                    spawn_shard_service(i, &self.cfg, &self.device_cfg, nv, &[], &obs);
                self.handles.push(svc.handle());
                self.services.push(svc);
                self.replay.push(Vec::new());
            }
            if new_n > old_n {
                if let Some(policy) = self.recovery.clone() {
                    // Persist the fresh (empty) incarnations immediately
                    // so a crash during the copy never restores a stale
                    // checkpoint from a retired shard slot of the same id.
                    let mut taken = 0u64;
                    let mut total = 0u64;
                    for i in old_n..new_n {
                        let (saved, n) = self.save_checkpoint(&policy, i);
                        if saved {
                            taken += 1;
                            total += n;
                        }
                    }
                    let mut c = self.shared.router.lock();
                    c.checkpoints_taken += taken;
                    c.checkpoint_bytes += total;
                }
            }
            self.cow_full_sync(&mut cow);
        }

        // Phase B: background replay rounds interleaved with live ingest.
        // The recv_timeout is the blocking point — traffic is absorbed the
        // moment it arrives, and an idle queue costs one short wait per
        // replay round instead of a busy spin.
        let router_batch = self.cfg.router_batch.max(1);
        let mut rounds_left = COW_MAX_ROUNDS;
        loop {
            match rx.recv_timeout(Duration::from_micros(500)) {
                Ok(cmd) => self.cow_absorb(cmd),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => self.shutdown_pending = true,
            }
            while self.pending_len < router_batch {
                match rx.try_recv() {
                    Ok(cmd) => self.cow_absorb(cmd),
                    Err(_) => break,
                }
            }
            self.forward();
            let shipped = if self.cow_sync_dirty {
                self.cow_full_sync(&mut cow);
                1
            } else {
                self.cow_replay_round(&mut cow)
            };
            rounds_left -= 1;
            if self.shutdown_pending || rounds_left == 0 || (shipped == 0 && rx.is_empty()) {
                break;
            }
        }

        // Phase B2: pre-settle. The staged copy is cheap to *ship* but the
        // destinations still owe its apply cost, and a naive final barrier
        // would eat all of it inside the pause. Async barriers are FIFO
        // behind every staged ship, so keep absorbing ingest (and keep the
        // replay cursors warm) while the destinations chew through the
        // backlog. Each barrier flush itself produces delta residue the
        // replay then ships, so reissue the barriers until a full round
        // lands with nothing shipped and nothing queued — the settle below
        // then finds empty queues and drained chains. Under saturating
        // ingest this never converges; the reissue cap hands the (bounded)
        // residue to the settle instead of looping forever.
        if !self.shutdown_pending {
            let t = Instant::now();
            let mut reissues = COW_PRESETTLE_REISSUES;
            'presettle: loop {
                let mut waits: Vec<Option<Receiver<Arc<GraphSnapshot>>>> = self
                    .services
                    .iter()
                    .map(|svc| svc.barrier_async().ok())
                    .collect();
                let mut shipped_since = 0u64;
                loop {
                    match rx.recv_timeout(Duration::from_micros(500)) {
                        Ok(cmd) => self.cow_absorb(cmd),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => self.shutdown_pending = true,
                    }
                    while self.pending_len < router_batch {
                        match rx.try_recv() {
                            Ok(cmd) => self.cow_absorb(cmd),
                            Err(_) => break,
                        }
                    }
                    self.forward();
                    shipped_since += if self.cow_sync_dirty {
                        self.cow_full_sync(&mut cow);
                        1
                    } else {
                        self.cow_replay_round(&mut cow)
                    };
                    let mut all = true;
                    for w in waits.iter_mut() {
                        let done = match w {
                            // A dead worker's ack never comes (Disconnected):
                            // phase C's recovery settles it instead.
                            Some(ack) => !matches!(ack.try_recv(), Err(TryRecvError::Empty)),
                            None => true,
                        };
                        if done {
                            *w = None;
                        } else {
                            all = false;
                        }
                    }
                    if self.shutdown_pending {
                        break 'presettle;
                    }
                    if all {
                        reissues -= 1;
                        if reissues == 0 || (shipped_since == 0 && rx.is_empty()) {
                            break 'presettle;
                        }
                        continue 'presettle;
                    }
                }
            }
            cow.background += t.elapsed();
        }

        // Phase C: settle. Ingest pauses from here to the plan swap — the
        // window this whole protocol exists to shrink. A shard that died
        // mid-stream must be recovered *before* the final replay reads its
        // delta chain. Work done here is pause, not background: remember
        // the background total so the sync helpers' bookkeeping inside the
        // pause can be reverted.
        let quiesce_span = obs.span(Stage::ReshardQuiesce);
        self.forward();
        self.ensure_shards_alive();
        if self.cow_sync_dirty {
            // A recovery landed after the last background round: restore
            // the staged images before the chains go static.
            self.cow_full_sync(&mut cow);
        }
        let t0 = Instant::now();
        let background_before = cow.background;
        let (snaps2, _) = self.barrier_all();
        // The barrier flushed every source's trailing updates, so the
        // delta chains are now complete and static: replay them dry. After
        // this loop the staged images *are* the mover set — the frozen-cut
        // copy plus the full chains reconstruct every boundary-crossing
        // edge, weights included. A ring outrun or recovery inside this
        // window trips the dirty flag and re-syncs from the (now settled)
        // frozen cuts; with no client traffic flowing the loop converges.
        for round in 0..COW_SETTLE_ROUNDS {
            if self.cow_sync_dirty {
                self.cow_full_sync(&mut cow);
            } else if self.cow_replay_round(&mut cow) == 0 {
                break;
            } else if round + 1 == COW_SETTLE_ROUNDS {
                self.shared.worker_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "gpma-cluster: reshard settle did not run dry in \
                     {COW_SETTLE_ROUNDS} rounds; proceeding with last state"
                );
            }
        }
        cow.background = background_before;
        drop(quiesce_span);

        let migrated: usize = cow.staged.iter().map(|m| m.len()).sum();
        // Retract every mover from its old owner: the staged copies on the
        // destinations become the only live copies at the swap, keeping
        // the marker cut duplicate-free. Retiring shards (shrink) skip the
        // retraction — their stores are dropped whole below.
        let mut retract_keys: Vec<Vec<u64>> = vec![Vec::new(); old_n];
        for staged in &cow.staged {
            for k in staged.keys() {
                let (src, dst) = gpma_graph::decode_key(*k);
                let from = old_plan.shard_of_edge(src, dst);
                if from < new_n {
                    retract_keys[from].push(*k);
                }
            }
        }
        // Each destination's staged map contributes a sorted run; the
        // concatenation is not globally sorted, and the shard apply path
        // wants key order — restore it before shipping.
        let retract: Vec<Vec<Edge>> = retract_keys
            .into_iter()
            .map(|mut ks| {
                ks.sort_unstable();
                ks.into_iter()
                    .map(|k| {
                        let (src, dst) = gpma_graph::decode_key(k);
                        Edge::new(src, dst)
                    })
                    .collect()
            })
            .collect();

        // Fast path: same shard count, nothing moved AND nothing was ever
        // staged — the new plan only changes where *future* updates route,
        // so swap it, reset the skew window (the rebalance cooldown) and
        // keep the delta ring intact: zero internal traffic entered any
        // shard's delta stream, so consumers keep composing deltas across
        // the boundary instead of rebasing. (Any staged ship disqualifies
        // this path — it already leaked into a destination's stream.) This
        // is what keeps a persistently hot vertex (skew irreducible by any
        // 1D plan) from thrashing every delta consumer once per window.
        if migrated == 0 && new_n == old_n && cow.copied == 0 && cow.replayed == 0 {
            let resident_edges: usize = snaps2.iter().map(|s| s.edges().len()).sum();
            let pause_secs = t0.elapsed().as_secs_f64();
            {
                let mut c = self.shared.router.lock();
                c.routed = vec![0; new_n];
                c.sub_batches = vec![0; new_n];
                c.reshard_count += 1;
                c.migration_pause_secs += pause_secs;
                c.migration_background_secs += cow.background.as_secs_f64();
            }
            {
                let mut p = self.shared.partition.lock();
                *p = p.advance(new.clone());
                self.part = p.clone();
            }
            let report = ReshardReport {
                version: self.part.version(),
                from_policy,
                to_policy: new.name().to_string(),
                from_shards: old_n,
                to_shards: new_n,
                migrated_edges: 0,
                resident_edges,
                migration_bytes: 0,
                full_rebuild_bytes: (resident_edges * BYTES_PER_UPDATE) as u64,
                pause_secs,
                background_secs: cow.background.as_secs_f64(),
                cut: self.shared.snapshot.lock().cut(),
                auto,
            };
            self.shared.reshards.lock().push(report.clone());
            self.cow_active = false;
            self.shared.reshard_active.store(false, Ordering::Relaxed);
            obs.event(
                Stage::ReshardResume,
                NO_SHARD,
                report.version,
                EventKind::ReshardEnd,
                (pause_secs * 1e6) as u64,
            );
            return Ok(report);
        }

        // Swap first, retract in the background. The staged copies on the
        // destinations are settled, so the moment the plan swaps every
        // future update routes to them and the movers' old copies are
        // garbage, not state — and deleting ~the whole mover set from the
        // sources is GPMA apply work far too slow to sit inside a pause.
        // Enqueue the retraction batches (send cost only), swap the plan,
        // and the pause ends: the sources chew through the deletions while
        // the router is back to absorbing live ingest under the new plan.
        // A reader pairing `partitioner()` with `snapshot()` inside this
        // window sees the new plan against the pre-reshard marker — the
        // benign direction (snapshots carry their own shard structure);
        // cuts stay deferred until the post-retire marker publishes.
        let resume_span = obs.span(Stage::ReshardResume);
        {
            let mut p = self.shared.partition.lock();
            *p = p.advance(new.clone());
            self.part = p.clone();
        }
        self.pending = vec![UpdateBatch::default(); new_n];
        self.pending_len = 0;
        // Surviving shards keep their replay logs — until the fresh
        // checkpoints below land, a death recovers from the pre-reshard
        // checkpoint plus the log, which recorded every internal ship.
        self.replay.truncate(new_n);
        for (i, edges) in retract.into_iter().enumerate() {
            if edges.is_empty() {
                continue;
            }
            let b = UpdateBatch {
                insertions: Vec::new(),
                deletions: edges,
            };
            if self.recovery.is_some() {
                self.replay[i].push(b.clone());
            }
            let _ = self.handles[i].ingest_unmetered(b);
        }
        let pause_secs = t0.elapsed().as_secs_f64();
        {
            let mut c = self.shared.router.lock();
            let old_ledgers = std::mem::take(&mut c.transfer);
            for t in &old_ledgers {
                c.retired_transfer.merge(t);
            }
            c.routed = vec![0; new_n];
            c.sub_batches = vec![0; new_n];
            c.transfer = vec![TransferLedger::default(); new_n];
            for to in 0..new_n {
                let n = cow.arrived[to];
                if n > 0 {
                    c.transfer[to].record(&self.link, n * BYTES_PER_UPDATE);
                }
            }
            c.reshard_count += 1;
            c.migrated_edges += migrated as u64;
            c.migration_bytes += (migrated * BYTES_PER_UPDATE) as u64;
            c.migration_pause_secs += pause_secs;
        }
        drop(resume_span);

        // Background retire: absorb live ingest under the new plan while
        // the sources apply their retractions, then assemble the marker
        // cut. Replay rounds must NOT run in this window — the sources'
        // delta streams now carry the retraction deletions, and a replay
        // would ship them to the destinations as deletes of the live
        // copies. `cow_retiring` points a mid-window recovery at the
        // replay log for the same reason. Retiring shards (shrink) drain
        // and drop here too: their stores are dead weight, not movers.
        self.cow_retiring = true;
        let t_retire = Instant::now();
        if new_n < self.services.len() {
            self.handles.truncate(new_n);
            for svc in self.services.drain(new_n..) {
                let _ = svc.shutdown();
            }
        }
        let mut waits: Vec<Option<Receiver<Arc<GraphSnapshot>>>> = self
            .services
            .iter()
            .map(|svc| svc.barrier_async().ok())
            .collect();
        loop {
            match rx.recv_timeout(Duration::from_micros(500)) {
                Ok(cmd) => self.cow_absorb(cmd),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => self.shutdown_pending = true,
            }
            while self.pending_len < router_batch {
                match rx.try_recv() {
                    Ok(cmd) => self.cow_absorb(cmd),
                    Err(_) => break,
                }
            }
            self.forward();
            let mut all = true;
            for w in waits.iter_mut() {
                let done = match w {
                    // A dead worker's ack never comes (Disconnected): the
                    // pre-marker probe below recovers it.
                    Some(ack) => !matches!(ack.try_recv(), Err(TryRecvError::Empty)),
                    None => true,
                };
                if done {
                    *w = None;
                } else {
                    all = false;
                }
            }
            if self.shutdown_pending || all {
                break;
            }
        }
        self.forward();
        self.ensure_shards_alive();
        let (snaps3, _) = self.barrier_all();
        cow.background += t_retire.elapsed();

        let cut = self.shared.cuts.fetch_add(1, Ordering::Relaxed) + 1;
        let snap = Arc::new(ClusterSnapshot::new(cut, nv, snaps3));
        let total_edges = snap.num_edges();
        self.last_cut_epochs = snap.shards().iter().map(|s| s.epoch()).collect();
        *self.shared.snapshot.lock() = snap.clone();
        self.shared.delta_log.lock().reset_to(cut);
        if let Some(tx) = &self.cut_tx {
            let _ = tx.send(CutEvent::Rebase(snap));
        }
        // The marker barrier settled every surviving shard, so fresh
        // checkpoints capture the fully retired post-migration state and
        // trim the replay logs (client batches and internal ships alike)
        // they subsume.
        if let Some(policy) = self.recovery.clone() {
            let mut taken = 0u64;
            let mut total = 0u64;
            for i in 0..self.services.len() {
                let (saved, n) = self.save_checkpoint(&policy, i);
                if saved {
                    taken += 1;
                    total += n;
                }
            }
            let mut c = self.shared.router.lock();
            c.checkpoints_taken += taken;
            c.checkpoint_bytes += total;
        }
        self.shared.router.lock().migration_background_secs += cow.background.as_secs_f64();

        self.cow_retiring = false;
        self.cow_active = false;
        self.shared.reshard_active.store(false, Ordering::Relaxed);
        obs.event(
            Stage::ReshardResume,
            NO_SHARD,
            self.part.version(),
            EventKind::ReshardEnd,
            (pause_secs * 1e6) as u64,
        );

        let report = ReshardReport {
            version: self.part.version(),
            from_policy,
            to_policy: new.name().to_string(),
            from_shards: old_n,
            to_shards: new_n,
            migrated_edges: migrated,
            resident_edges: total_edges.saturating_sub(migrated),
            migration_bytes: (migrated * BYTES_PER_UPDATE) as u64,
            full_rebuild_bytes: (total_edges * BYTES_PER_UPDATE) as u64,
            pause_secs,
            background_secs: cow.background.as_secs_f64(),
            cut,
            auto,
        };
        self.shared.reshards.lock().push(report.clone());
        Ok(report)
    }

    /// Reshard onto a degree-aware plan built from the observed per-vertex
    /// update load.
    fn rebalance(
        &mut self,
        target_shards: Option<usize>,
        auto: bool,
        rx: &Receiver<Command>,
    ) -> Result<ReshardReport, ReshardError> {
        let shards = target_shards.unwrap_or(self.services.len()).max(1);
        let plan = Arc::new(DegreePartition::from_degrees(&self.observed, shards));
        self.reshard(plan, auto, rx)
    }

    /// The skew-driven trigger, evaluated after each forwarded burst: once
    /// enough updates accumulated under the current plan, a max/mean
    /// routed-update skew above the policy threshold fires a rebalance.
    /// The reshard resets the window counters, so the policy re-arms only
    /// after another `min_updates` observations.
    fn maybe_rebalance(&mut self, rx: &Receiver<Command>) {
        let Some(policy) = self.cfg.rebalance else {
            return;
        };
        let skew = {
            let c = self.shared.router.lock();
            let total: u64 = c.routed.iter().sum();
            if total < policy.min_updates.max(1) || c.routed.is_empty() {
                return;
            }
            let max = *c.routed.iter().max().unwrap_or(&0) as f64;
            max / (total as f64 / c.routed.len() as f64)
        };
        if skew > policy.skew_threshold {
            let _ = self.rebalance(policy.target_shards, true, rx);
        }
    }

    /// Assemble the delta between the previous cut and this one: each
    /// shard's inter-cut epoch chain folds into one per-shard delta, and
    /// shards own disjoint edge sets, so their union is the cut's exact net
    /// effect. A shard whose ring already evicted part of its chain forces
    /// a full-snapshot fallback (counted, and pushed as a ring reset so
    /// readers rebase too).
    fn publish_cut_delta(&mut self, cut: u64, snap: &Arc<ClusterSnapshot>) {
        let mut inserted: Vec<Edge> = Vec::new();
        let mut deleted: Vec<u64> = Vec::new();
        // A recovery since the last cut restarted a shard's epoch space, so
        // its inter-cut chain cannot be stitched: rebase this one cut.
        let mut lagged = std::mem::take(&mut self.force_rebase);
        for (i, svc) in self.services.iter().enumerate() {
            // Async cut rounds leave a gap between a shard acking its
            // barrier and the round completing; traffic forwarded in that
            // gap flushes as deltas *beyond* this cut. Fold only up to the
            // epoch the cut's own snapshot carries — later deltas belong
            // to the next cut's chain.
            let bound = snap.shards()[i].epoch();
            if !lagged {
                match svc.deltas_since(self.last_cut_epochs[i]) {
                    DeltaCatchUp::Deltas(chain) => {
                        let mut folded = SnapshotDelta::default();
                        for d in chain.iter().filter(|d| d.epoch() <= bound) {
                            folded.merge(d);
                        }
                        inserted.extend_from_slice(folded.inserted());
                        deleted.extend_from_slice(folded.deleted_keys());
                    }
                    DeltaCatchUp::Snapshot(_) => lagged = true,
                }
            }
            self.last_cut_epochs[i] = bound;
        }
        if lagged {
            // Readers of the cluster ring must rebase: clear it so
            // `deltas_since` reports the lag, and tell the monitors.
            {
                let mut log = self.shared.delta_log.lock();
                let capacity = log.capacity();
                *log = DeltaLog::new(capacity);
            }
            self.shared.delta_fallbacks.fetch_add(1, Ordering::Relaxed);
            if let Some(tx) = &self.cut_tx {
                let _ = tx.send(CutEvent::Rebase(snap.clone()));
            }
            return;
        }
        inserted.sort_by_key(Edge::key);
        deleted.sort_unstable();
        let delta = Arc::new(SnapshotDelta::from_parts(cut, inserted, deleted));
        self.shared.delta_log.lock().push(delta.clone());
        if let Some(tx) = &self.cut_tx {
            let _ = tx.send(CutEvent::Delta(delta));
        }
    }
}

/// The router loop: block on the queue, coalesce bursts into per-shard
/// sub-batches, forward, serve cuts and stats, and on shutdown drain
/// everything, final-cut and stop the shard services.
fn run_router(
    rx: Receiver<Command>,
    services: Vec<StreamingService>,
    part: Arc<dyn Partitioner>,
    shared: Arc<Shared>,
    cfg: ClusterConfig,
    device_cfg: DeviceConfig,
    cut_tx: Option<Sender<CutEvent>>,
) -> Vec<ServiceReport> {
    let num_shards = services.len();
    let num_vertices = part.num_vertices();
    let router_batch = cfg.router_batch.max(1);
    let recovery = cfg.recovery.clone();
    let fault = cfg.fault;
    let mut r = Router {
        handles: services.iter().map(|s| s.handle()).collect(),
        services,
        part: PartitionEpoch::new(part),
        shared,
        cfg,
        device_cfg,
        link: Pcie::new(PcieConfig::default()),
        pending: vec![UpdateBatch::default(); num_shards],
        pending_len: 0,
        local_cut_edges: 0,
        local_cancelled: 0,
        observed: vec![0; num_vertices as usize],
        last_cut_epochs: vec![0; num_shards],
        cut_tx,
        recovery,
        fault,
        lifetime_routed: 0,
        replay: vec![Vec::new(); num_shards],
        force_rebase: false,
        pending_cut: None,
        queued_cut_acks: Vec::new(),
        deferred: VecDeque::new(),
        cow_active: false,
        cow_sync_dirty: false,
        cow_recovered: Vec::new(),
        cow_retiring: false,
        shutdown_pending: false,
    };
    'serve: loop {
        // With a cut round in flight, poll its barrier acks between short
        // queue waits instead of blocking on the queue — an idle cluster
        // must still complete its cuts.
        let cmd = if r.pending_cut.is_some() {
            match rx.recv_timeout(Duration::from_micros(200)) {
                Ok(cmd) => Some(cmd),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break 'serve,
            }
        } else {
            match rx.recv() {
                Ok(cmd) => Some(cmd),
                // Front object and every handle dropped: final flush.
                Err(_) => break 'serve,
            }
        };
        let mut stop = false;
        if let Some(cmd) = cmd {
            stop = handle_command(cmd, &mut r, &rx);
            // Coalesce whatever else is already queued before forwarding,
            // so bursts ship as few, large modeled DMAs.
            while !stop && r.pending_len < router_batch {
                match rx.try_recv() {
                    Ok(cmd) => stop = handle_command(cmd, &mut r, &rx),
                    Err(_) => break,
                }
            }
        }
        r.forward();
        r.poll_pending_cut(false);
        if !stop {
            r.maybe_rebalance(&rx);
        }
        // Cuts and plan changes a reshard deferred run now, in arrival
        // order, against the settled post-swap cluster. This runs after
        // `maybe_rebalance` so an auto-reshard's deferrals drain before
        // the loop blocks on the queue again — a parked cut ack would
        // otherwise wait on unrelated future traffic.
        while !stop {
            let Some(cmd) = r.deferred.pop_front() else {
                break;
            };
            stop = handle_command(cmd, &mut r, &rx);
        }
        if stop {
            break 'serve;
        }
    }
    // Shutdown (or disconnect) path: absorb everything still queued, then
    // take the final coordinated cut and stop the shards.
    while let Ok(cmd) = rx.try_recv() {
        match cmd {
            Command::Shutdown => {}
            other => {
                handle_command(other, &mut r, &rx);
            }
        }
    }
    while let Some(cmd) = r.deferred.pop_front() {
        match cmd {
            Command::Shutdown => {}
            other => {
                handle_command(other, &mut r, &rx);
            }
        }
    }
    r.resolve_pending_cut();
    r.cut_sync();
    r.handles.clear();
    r.services
        .drain(..)
        .map(|svc| svc.shutdown())
        .collect()
}

/// Apply one command. Returns `true` when the router must begin shutdown
/// (an explicit `Shutdown`, or one absorbed mid-reshard).
fn handle_command(cmd: Command, r: &mut Router, rx: &Receiver<Command>) -> bool {
    match cmd {
        Command::Insert(_) | Command::Delete(_) | Command::Batch(_) => r.route(cmd),
        Command::Cut(ack) => r.begin_cut(ack),
        Command::Reshard(new, ack) => {
            let _ = ack.send(r.reshard(new, false, rx));
        }
        Command::Rebalance(target, ack) => {
            let _ = ack.send(r.rebalance(target, false, rx));
        }
        Command::Stats(reply) => {
            // Flush residue first so the reply (and the shared counters it
            // is read alongside) reflect everything accepted so far.
            r.forward();
            let _ = reply.send(r.services.iter().map(|s| s.metrics()).collect());
        }
        Command::Kill(shard, ack) => r.kill(shard, ack),
        Command::Shutdown => return true,
    }
    std::mem::take(&mut r.shutdown_pending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpma_core::multi::{EdgeGridPartition, HashVertexPartition, VertexPartition};
    use gpma_sim::DeviceConfig;

    fn spawn4(policy: Arc<dyn Partitioner>, initial: &[Edge]) -> GraphCluster {
        GraphCluster::spawn(
            ClusterConfig {
                flush_threshold: 4,
                router_batch: 8,
                ..Default::default()
            },
            &DeviceConfig::deterministic(),
            policy,
            initial,
        )
    }

    #[test]
    fn roundtrip_and_cut_under_hash_policy() {
        let part = Arc::new(HashVertexPartition {
            num_vertices: 32,
            num_shards: 4,
        });
        let c = spawn4(part, &[Edge::new(0, 1)]);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.snapshot().cut(), 0);
        let h = c.handle();
        for i in 1..=16u32 {
            h.insert(Edge::new(i, 0)).unwrap();
        }
        let snap = c.epoch_cut().unwrap();
        assert_eq!(snap.cut(), 1);
        assert_eq!(snap.num_edges(), 17);
        let report = c.shutdown();
        assert_eq!(report.metrics.ingested(), 16);
        assert_eq!(report.final_snapshot.num_edges(), 17);
        assert!(report.final_snapshot.cut() > snap.cut());
        assert_eq!(report.shard_reports.len(), 4);
        // Every routed update was charged to a transfer ledger.
        let total = report.metrics.total_transfer();
        assert_eq!(report.metrics.routed.iter().sum::<u64>(), 16);
        assert_eq!(total.bytes, 16 * BYTES_PER_UPDATE as u64);
        assert!(total.time.secs() > 0.0);
    }

    #[test]
    fn telemetry_covers_ingest_routing_cut_and_reshard() {
        let part = Arc::new(HashVertexPartition {
            num_vertices: 32,
            num_shards: 2,
        });
        let c = spawn4(part, &[]);
        let h = c.handle();
        for i in 1..=32u32 {
            h.insert(Edge::new(i % 32, (i + 7) % 32)).unwrap();
        }
        c.epoch_cut().unwrap();
        c.reshard(Arc::new(HashVertexPartition {
            num_vertices: 32,
            num_shards: 4,
        }))
        .unwrap();

        let obs = c.obs().clone();
        assert_eq!(obs.hist(Stage::IngestEnqueue).snapshot().count, 32);
        for stage in [
            Stage::RouteBatch,
            Stage::Forward,
            Stage::FlushApply,
            Stage::CutBarrier,
            Stage::CutPublish,
            Stage::ReshardQuiesce,
            Stage::ReshardMigrate,
            Stage::ReshardReplay,
            Stage::ReshardResume,
            Stage::CutAlign,
        ] {
            assert!(
                obs.hist(stage).snapshot().count > 0,
                "stage {} never recorded",
                stage.name()
            );
        }
        let events = obs.events();
        assert!(events.iter().any(|e| e.kind == EventKind::Cut));
        assert!(events.iter().any(|e| e.kind == EventKind::ReshardBegin));
        assert!(events.iter().any(|e| e.kind == EventKind::ReshardEnd));
        gpma_obs::parse_exposition(&obs.render_prometheus()).unwrap();
        let report = c.metrics_report().unwrap();
        assert!(report.contains("cut.barrier"), "{report}");
        assert!(c.obs_dump().contains("\"events\""));
        c.shutdown();
    }

    #[test]
    fn arrival_order_wins_across_shard_routing() {
        let part = Arc::new(VertexPartition {
            num_vertices: 16,
            num_shards: 4,
        });
        let c = spawn4(part, &[]);
        let h = c.handle();
        // insert → delete ⇒ absent (cancelled in the router or the shard).
        h.insert(Edge::new(1, 2)).unwrap();
        h.delete(Edge::new(1, 2)).unwrap();
        // delete → insert ⇒ present.
        h.delete(Edge::new(9, 3)).unwrap();
        h.insert(Edge::new(9, 3)).unwrap();
        let snap = c.epoch_cut().unwrap();
        assert!(!snap.contains(1, 2));
        assert!(snap.contains(9, 3));
        let report = c.shutdown();
        assert_eq!(
            report.metrics.cancelled_inserts
                + report
                    .shard_reports
                    .iter()
                    .map(|r| r.metrics.counters.cancelled_inserts)
                    .sum::<u64>(),
            1
        );
    }

    #[test]
    fn handles_fail_after_shutdown() {
        let part = Arc::new(VertexPartition {
            num_vertices: 8,
            num_shards: 2,
        });
        let c = spawn4(part, &[]);
        let h = c.handle();
        drop(c.shutdown());
        assert_eq!(h.insert(Edge::new(1, 2)), Err(ClusterClosed));
        assert_eq!(h.delete(Edge::new(1, 2)), Err(ClusterClosed));
    }

    #[test]
    fn grid_policy_splits_rows_yet_cut_sees_whole_graph() {
        let part = Arc::new(EdgeGridPartition::new(16, 4));
        let c = spawn4(part.clone(), &[]);
        let h = c.handle();
        // Vertex 0's out-row spans both column blocks of grid row 0.
        for d in 1..16u32 {
            h.insert(Edge::new(0, d)).unwrap();
        }
        let snap = c.epoch_cut().unwrap();
        assert_eq!(snap.num_edges(), 15);
        use gpma_analytics::HostGraph;
        assert_eq!(HostGraph::out_degree(&*snap, 0), 15);
        // The row genuinely lives on more than one shard.
        let shards_with_row = snap
            .shards()
            .iter()
            .filter(|s| s.out_degree(0) > 0)
            .count();
        assert!(shards_with_row > 1, "grid should split vertex 0's row");
        let report = c.shutdown();
        assert!(report.metrics.cut_edges > 0);
    }

    #[test]
    fn cut_deltas_replay_to_the_merged_cut() {
        use gpma_core::delta::apply_delta;
        let part = Arc::new(HashVertexPartition {
            num_vertices: 32,
            num_shards: 4,
        });
        let c = spawn4(part, &[Edge::new(0, 1), Edge::new(1, 2)]);
        let cut0 = c.snapshot().to_graph_snapshot();
        let h = c.handle();
        for i in 2..=9u32 {
            h.insert(Edge::new(i, 0)).unwrap();
        }
        h.delete(Edge::new(0, 1)).unwrap();
        c.epoch_cut().unwrap();
        for i in 10..=13u32 {
            h.insert(Edge::new(i, 1)).unwrap();
        }
        let cut2 = c.epoch_cut().unwrap();
        let chain = match c.deltas_since(0) {
            DeltaCatchUp::Deltas(chain) => chain,
            DeltaCatchUp::Snapshot(_) => panic!("ring covers both cuts"),
        };
        assert_eq!(
            chain.iter().map(|d| d.epoch()).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let mut replayed = cut0;
        for d in &chain {
            replayed = apply_delta(&replayed, d);
        }
        let flat = cut2.to_graph_snapshot();
        assert_eq!(replayed.edges(), flat.edges());
        assert_eq!(replayed.epoch(), cut2.cut());
        // Delta bytes are O(|Δ|): the second cut changed 4 edges.
        assert_eq!(chain[1].len(), 4);
        let report = c.shutdown();
        assert_eq!(report.metrics.delta_fallbacks, 0);
    }

    #[test]
    fn cluster_delta_monitors_track_cuts() {
        use gpma_core::delta::SnapshotDelta;
        use gpma_core::framework::GraphSnapshot;
        type Log = Arc<parking_lot::Mutex<Vec<(bool, u64)>>>;
        struct Recorder(Log);
        impl gpma_service::DeltaMonitor for Recorder {
            fn name(&self) -> &str {
                "cut-recorder"
            }
            fn on_rebase(&mut self, snapshot: &GraphSnapshot) {
                self.0.lock().push((true, snapshot.epoch()));
            }
            fn on_delta(&mut self, delta: &SnapshotDelta) {
                self.0.lock().push((false, delta.epoch()));
            }
        }
        let log: Log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let part = Arc::new(VertexPartition {
            num_vertices: 16,
            num_shards: 4,
        });
        let c = GraphCluster::spawn_with_delta_monitors(
            ClusterConfig {
                flush_threshold: 2,
                router_batch: 4,
                ..Default::default()
            },
            &DeviceConfig::deterministic(),
            part,
            &[Edge::new(0, 1)],
            vec![Box::new(Recorder(log.clone()))],
        );
        let h = c.handle();
        for i in 1..=6u32 {
            h.insert(Edge::new(i, 0)).unwrap();
        }
        c.epoch_cut().unwrap();
        let report = c.shutdown();
        assert_eq!(report.delta_monitors.len(), 1);
        let events = log.lock().clone();
        // Initial rebase at cut 0, then one delta per cut (incl. the final
        // shutdown cut), in order.
        assert_eq!(events[0], (true, 0));
        let cuts: Vec<u64> = events[1..].iter().map(|&(_, c)| c).collect();
        assert!(events[1..].iter().all(|&(rebase, _)| !rebase));
        let expect: Vec<u64> = (1..=report.final_snapshot.cut()).collect();
        assert_eq!(cuts, expect);
    }

    #[test]
    fn reshard_migrates_grows_and_shrinks() {
        let part = Arc::new(HashVertexPartition {
            num_vertices: 32,
            num_shards: 4,
        });
        let c = spawn4(part, &[]);
        let h = c.handle();
        for i in 0..24u32 {
            h.insert(Edge::new(i % 32, (i + 7) % 32)).unwrap();
        }
        c.epoch_cut().unwrap();

        // 4 → 2 under an explicit range plan.
        let r1 = c
            .reshard(Arc::new(VertexPartition {
                num_vertices: 32,
                num_shards: 2,
            }))
            .unwrap();
        assert_eq!((r1.from_shards, r1.to_shards), (4, 2));
        assert_eq!(r1.version, 1);
        assert!(!r1.auto);
        assert_eq!(r1.migrated_edges + r1.resident_edges, 24);
        assert!(r1.migration_bytes <= r1.full_rebuild_bytes);
        assert_eq!(c.num_shards(), 2);
        assert_eq!(c.partition_version(), 1);
        assert_eq!(c.partitioner().name(), "vertex-range");
        assert_eq!(c.snapshot().cut(), r1.cut);
        assert_eq!(c.snapshot().num_edges(), 24, "no edge lost shrinking");

        // Updates keep flowing and route under the new plan.
        h.insert(Edge::new(5, 9)).unwrap();
        h.delete(Edge::new(5, 9)).unwrap();
        let snap = c.epoch_cut().unwrap();
        assert!(!snap.contains(5, 9), "arrival order survives the reshard");

        // 2 → 8 via the degree-aware rebalance target.
        let r2 = c.rebalance(Some(8)).unwrap();
        assert_eq!((r2.from_shards, r2.to_shards), (2, 8));
        assert_eq!(r2.to_policy, "degree-aware");
        assert_eq!(c.num_shards(), 8);
        let final_snap = c.epoch_cut().unwrap();
        assert_eq!(final_snap.num_edges(), 24);
        assert_eq!(final_snap.num_shards(), 8);

        // Every live edge sits on the shard the new plan owns it with.
        let plan = c.partitioner();
        for (i, s) in final_snap.shards().iter().enumerate() {
            for e in s.edges() {
                assert_eq!(plan.shard_of_edge(e.src, e.dst), i);
            }
        }

        let report = c.shutdown();
        let stats = report.metrics.migration_stats();
        assert_eq!(stats.reshards, 2);
        assert_eq!(
            stats.migrated_edges,
            (r1.migrated_edges + r2.migrated_edges) as u64
        );
        assert_eq!(
            stats.migration_bytes,
            r1.migration_bytes + r2.migration_bytes
        );
        assert!(stats.pause_secs > 0.0 && stats.avg_pause_secs > 0.0);
        assert_eq!(report.metrics.partition_version, 2);
        // Migration DMAs were charged to the ledgers; lifetime totals keep
        // the pre-reshard host→shard traffic too (retired ledgers).
        assert!(report.metrics.total_transfer().bytes >= 24 * BYTES_PER_UPDATE as u64);
    }

    #[test]
    fn reshard_rejects_vertex_space_changes() {
        let part = Arc::new(VertexPartition {
            num_vertices: 16,
            num_shards: 2,
        });
        let c = spawn4(part, &[Edge::new(0, 1)]);
        let err = c
            .reshard(Arc::new(VertexPartition {
                num_vertices: 99,
                num_shards: 2,
            }))
            .unwrap_err();
        assert_eq!(
            err,
            ReshardError::VertexMismatch {
                expected: 16,
                got: 99
            }
        );
        // The cluster is untouched and keeps serving.
        assert_eq!(c.partition_version(), 0);
        let h = c.handle();
        h.insert(Edge::new(2, 3)).unwrap();
        assert_eq!(c.epoch_cut().unwrap().num_edges(), 2);
        drop(c.shutdown());
    }

    #[test]
    fn reshard_publishes_snapshot_style_delta_marker() {
        let part = Arc::new(HashVertexPartition {
            num_vertices: 32,
            num_shards: 4,
        });
        let c = spawn4(part, &[Edge::new(0, 1)]);
        let h = c.handle();
        for i in 1..=8u32 {
            h.insert(Edge::new(i, 0)).unwrap();
        }
        c.epoch_cut().unwrap(); // cut 1: delta in the ring
        let r = c
            .reshard(Arc::new(VertexPartition {
                num_vertices: 32,
                num_shards: 2,
            }))
            .unwrap(); // cut 2: epoch marker
        // Pre-reshard readers must rebase: per-epoch deltas do not compose
        // across the migration.
        assert!(matches!(c.deltas_since(0), DeltaCatchUp::Snapshot(_)));
        assert!(matches!(c.deltas_since(1), DeltaCatchUp::Snapshot(_)));
        // A reader at the marker cut is current, and the chain resumes.
        assert!(matches!(
            c.deltas_since(r.cut),
            DeltaCatchUp::Deltas(ref d) if d.is_empty()
        ));
        h.insert(Edge::new(20, 21)).unwrap();
        let next = c.epoch_cut().unwrap();
        match c.deltas_since(r.cut) {
            DeltaCatchUp::Deltas(chain) => {
                assert_eq!(chain.len(), 1);
                assert_eq!(chain[0].epoch(), next.cut());
                // The post-reshard delta is the user's update only — the
                // migration itself never leaks into the delta stream.
                assert_eq!(chain[0].len(), 1);
            }
            DeltaCatchUp::Snapshot(_) => panic!("chain must resume after the marker"),
        }
        let report = c.shutdown();
        assert_eq!(report.metrics.delta_fallbacks, 0, "marker is not a fallback");
    }

    #[test]
    fn noop_reshard_swaps_plan_without_breaking_delta_chain() {
        // Resharding onto a plan that moves nothing (and keeps the shard
        // count) must swap the plan and reset the skew window but leave
        // the delta ring intact — consumers keep composing deltas across
        // the boundary instead of rebasing on a snapshot.
        let part = Arc::new(VertexPartition {
            num_vertices: 16,
            num_shards: 2,
        });
        let c = spawn4(part.clone(), &[]);
        let h = c.handle();
        h.insert(Edge::new(1, 2)).unwrap();
        let cut1 = c.epoch_cut().unwrap();
        // Same placement, fresh Arc: every edge already sits where the
        // "new" plan wants it.
        let r = c
            .reshard(Arc::new(VertexPartition {
                num_vertices: 16,
                num_shards: 2,
            }))
            .unwrap();
        assert_eq!(r.migrated_edges, 0);
        assert_eq!(r.migration_bytes, 0);
        assert_eq!(r.cut, cut1.cut(), "no marker cut published");
        assert_eq!(c.partition_version(), 1, "plan still swapped");
        // The pre-reshard delta chain is still served — no forced rebase.
        match c.deltas_since(0) {
            DeltaCatchUp::Deltas(chain) => {
                assert_eq!(chain.len(), 1);
                assert_eq!(chain[0].epoch(), cut1.cut());
            }
            DeltaCatchUp::Snapshot(_) => panic!("no-op reshard must keep the ring"),
        }
        // Skew window reset (the rebalance cooldown observable).
        let m = c.metrics().unwrap();
        assert_eq!(m.routed, vec![0, 0]);
        assert_eq!(m.reshard_count, 1);
        drop(c.shutdown());
    }

    #[test]
    fn rebalance_policy_fires_and_rearms() {
        // All updates hammer one source vertex: any vertex policy puts the
        // whole load on one shard (skew = num_shards), so the policy must
        // fire as soon as the window fills.
        let part = Arc::new(HashVertexPartition {
            num_vertices: 64,
            num_shards: 4,
        });
        let c = GraphCluster::spawn(
            ClusterConfig {
                flush_threshold: 8,
                router_batch: 8,
                rebalance: Some(RebalancePolicy {
                    skew_threshold: 1.5,
                    min_updates: 64,
                    target_shards: None,
                }),
                ..Default::default()
            },
            &DeviceConfig::deterministic(),
            part,
            &[],
        );
        let h = c.handle();
        for i in 0..200u32 {
            h.insert(Edge::new(7, (i + 8) % 64)).unwrap();
        }
        c.epoch_cut().unwrap();
        let history = c.reshard_history();
        assert!(!history.is_empty(), "skew policy must trigger a reshard");
        assert!(history[0].auto);
        assert_eq!(history[0].to_policy, "degree-aware");
        assert_eq!(history[0].to_shards, 4, "target_shards None keeps count");
        // A single eternally-hot vertex keeps max/mean at num_shards even
        // under the degree-aware plan, so the policy may legitimately fire
        // again — but the cooldown (window reset) bounds it to one reshard
        // per min_updates observations.
        let report = c.shutdown();
        assert!(
            (1..=200 / 64 + 1).contains(&report.metrics.reshard_count),
            "cooldown violated: {} reshards",
            report.metrics.reshard_count
        );
        assert_eq!(report.final_snapshot.num_edges(), 64, "64 distinct dsts");
    }

    #[test]
    fn metrics_round_trip_through_router() {
        let part = Arc::new(VertexPartition {
            num_vertices: 8,
            num_shards: 2,
        });
        let c = spawn4(part, &[Edge::new(0, 1)]);
        let h = c.handle();
        for i in 0..6u32 {
            h.insert(Edge::new(i % 8, (i + 3) % 8)).unwrap();
        }
        c.epoch_cut().unwrap();
        let m = c.metrics().unwrap();
        assert_eq!(m.num_shards, 2);
        assert_eq!(m.shards.len(), 2);
        assert_eq!(m.ingested(), 6);
        assert_eq!(m.cuts, 1);
        assert!(m.elapsed_secs > 0.0);
        let line = m.to_string();
        assert!(line.contains("cut"), "display: {line}");
        drop(c);
    }

    #[test]
    fn barrier_falls_back_to_published_snapshot_on_a_closed_shard() {
        // No recovery policy: killing a shard leaves a corpse, and cuts
        // must degrade to its latest *published* snapshot (PR-6 fallback)
        // instead of poisoning the router.
        let part = Arc::new(VertexPartition {
            num_vertices: 16,
            num_shards: 4,
        });
        let c = spawn4(part, &[]);
        let h = c.handle();
        for i in 0..4u32 {
            h.insert(Edge::new(0, 4 + i)).unwrap(); // all on shard 0
        }
        let cut1 = c.epoch_cut().unwrap();
        assert_eq!(cut1.num_edges(), 4);

        // Two more shard-0 edges stay below the flush threshold (4): they
        // sit buffered in the worker when the kill lands, and die with it.
        h.insert(Edge::new(1, 8)).unwrap();
        h.insert(Edge::new(1, 9)).unwrap();
        assert_eq!(c.kill_shard(0), Ok(true));
        assert_eq!(c.kill_shard(9), Ok(false), "out of range is non-fatal");

        // Shard 1 keeps serving; shard 0's slice of the cut is its stale
        // published snapshot — the fallback this test pins down.
        h.insert(Edge::new(4, 0)).unwrap();
        let cut2 = c.epoch_cut().unwrap();
        assert!(cut2.contains(4, 0));
        assert!(!cut2.contains(1, 8), "unflushed residue died with the worker");
        assert!(!cut2.contains(1, 9));
        assert_eq!(cut2.num_edges(), 5);
        for i in 0..4u32 {
            assert!(cut2.contains(0, 4 + i), "flushed state survives as the fallback");
        }
        let m = c.metrics().unwrap();
        // One error for the out-of-range kill, one per degraded barrier
        // (cut 2 and the shutdown cut both hit the corpse).
        assert!(m.worker_errors >= 2, "worker errors: {}", m.worker_errors);
        assert_eq!(m.recoveries, 0, "no recovery policy, no respawn");
        let report = c.shutdown();
        assert!(report.metrics.worker_errors >= 3);
    }

    #[test]
    fn killed_shard_recovers_from_checkpoint_and_replay() {
        let part = Arc::new(VertexPartition {
            num_vertices: 16,
            num_shards: 4,
        });
        let store = Arc::new(MemoryCheckpointStore::new());
        let c = GraphCluster::spawn(
            ClusterConfig {
                flush_threshold: 4,
                router_batch: 8,
                recovery: Some(RecoveryPolicy {
                    store: store.clone(),
                    checkpoint_every_cuts: 1,
                }),
                ..Default::default()
            },
            &DeviceConfig::deterministic(),
            part,
            &[Edge::new(0, 1)],
        );
        let h = c.handle();
        for i in 0..4u32 {
            h.insert(Edge::new(0, 4 + i)).unwrap();
        }
        let cut1 = c.epoch_cut().unwrap();
        assert_eq!(cut1.num_edges(), 5);
        assert!(store.len() >= 4, "cut 1 checkpointed every shard");

        // Updates after the checkpoint: some flushed, some residue when the
        // kill lands — recovery must reassemble all of them.
        for i in 0..6u32 {
            h.insert(Edge::new(1, 8 + i)).unwrap();
        }
        assert_eq!(c.kill_shard(0), Ok(true));
        // Traffic to the dead shard turns the failed forward into the
        // failure detector; recovery runs inline, and the replayed log
        // restores both this burst and the pre-kill residue.
        h.insert(Edge::new(2, 3)).unwrap();
        h.delete(Edge::new(0, 4)).unwrap();
        let cut2 = c.epoch_cut().unwrap();
        assert!(cut2.contains(0, 1));
        assert!(!cut2.contains(0, 4), "post-recovery deletes apply");
        for i in 0..6u32 {
            assert!(cut2.contains(1, 8 + i), "killed updates recovered");
        }
        assert!(cut2.contains(2, 3));
        assert_eq!(cut2.num_edges(), 1 + 3 + 6 + 1);

        let m = c.metrics().unwrap();
        assert_eq!(m.recoveries, 1);
        assert!(m.recovery_replayed_updates >= 6, "{m}");
        assert!(m.checkpoints_taken >= 9, "4 at cut1 + 1 post-recovery + 4 at cut2");
        assert!(m.checkpoint_bytes > 0);
        let s = m.recovery_stats();
        assert_eq!(s.recoveries, 1);
        assert!(s.recovery_secs > 0.0 && s.avg_recovery_secs > 0.0);

        // The cut spanning the crash published as a rebase (epochs restart
        // per incarnation, so its delta cannot be stitched) — readers at
        // cut 1 must be told to fall back, not fed a wrong chain.
        match c.deltas_since(1) {
            DeltaCatchUp::Snapshot(s) => assert_eq!(s.cut(), cut2.cut()),
            DeltaCatchUp::Deltas(_) => panic!("cross-incarnation delta must not be stitched"),
        }
        assert!(m.delta_fallbacks >= 1);
        c.shutdown();
    }

    #[test]
    fn fault_plan_fires_once_and_cluster_rejoins_exactly() {
        let part = Arc::new(HashVertexPartition {
            num_vertices: 32,
            num_shards: 4,
        });
        let c = GraphCluster::spawn(
            ClusterConfig {
                flush_threshold: 4,
                router_batch: 8,
                recovery: Some(RecoveryPolicy::default()),
                fault: Some(FaultPlan {
                    kill_shard: 1,
                    after_routed_updates: 12,
                    during_reshard: false,
                }),
                ..Default::default()
            },
            &DeviceConfig::deterministic(),
            part,
            &[],
        );
        let h = c.handle();
        for i in 0..32u32 {
            h.insert(Edge::new(i, (i + 1) % 32)).unwrap();
        }
        let snap = c.epoch_cut().unwrap();
        assert_eq!(snap.num_edges(), 32, "no update lost across the injected crash");
        for i in 0..32u32 {
            assert!(snap.contains(i, (i + 1) % 32));
        }
        let report = c.shutdown();
        assert_eq!(report.metrics.recoveries, 1, "the plan fires exactly once");
    }
}

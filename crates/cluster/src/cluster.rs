//! The cluster runtime: cluster handles, the router thread that fans one
//! ingest stream out across per-shard [`StreamingService`] workers, the
//! coordinated epoch cut, and the shutdown protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};
use gpma_core::delta::{DeltaCatchUp, DeltaLog, SnapshotDelta};
use gpma_core::framework::{DynamicGraphSystem, GraphSnapshot, BYTES_PER_UPDATE};
use gpma_core::multi::Partitioner;
use gpma_graph::{Edge, UpdateBatch};
use gpma_service::{DeltaMonitor, IngestHandle, ServiceConfig, ServiceReport, StreamingService};
use gpma_sim::pcie::{Pcie, TransferLedger};
use gpma_sim::{Device, DeviceConfig, PcieConfig};
use parking_lot::Mutex;

use crate::metrics::ClusterMetrics;
use crate::snapshot::ClusterSnapshot;

/// Tuning knobs for a [`GraphCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Capacity of the cluster's bounded router queue. Blocking producers
    /// stall when it fills — backpressure propagates from the shard queues
    /// through the router to every [`ClusterHandle`].
    pub queue_capacity: usize,
    /// Capacity of each shard service's own ingest queue.
    pub shard_queue_capacity: usize,
    /// Flush threshold of each shard's `GraphStreamBuffer` (updates per
    /// device step).
    pub flush_threshold: usize,
    /// Updates the router coalesces before forwarding per-shard sub-batches
    /// (one modeled DMA per non-empty sub-batch). Larger values amortize
    /// the per-transfer latency floor; smaller values cut snapshot
    /// staleness.
    pub router_batch: usize,
    /// Cut-level deltas the cluster retains for reader catch-up
    /// ([`GraphCluster::deltas_since`]).
    pub delta_log_capacity: usize,
    /// Epoch deltas each *shard* service retains. Must comfortably cover
    /// the flushes a shard performs between two coordinated cuts, or the
    /// cluster falls back to publishing the cut as a full snapshot.
    pub shard_delta_log_capacity: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            queue_capacity: 4096,
            shard_queue_capacity: 1024,
            flush_threshold: 64,
            router_batch: 256,
            delta_log_capacity: 256,
            shard_delta_log_capacity: 4096,
        }
    }
}

/// Error returned by every handle operation once the cluster router has
/// exited (after [`GraphCluster::shutdown`] or a router panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterClosed;

impl std::fmt::Display for ClusterClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the graph cluster has shut down")
    }
}

impl std::error::Error for ClusterClosed {}

/// Commands flowing through the bounded router queue.
enum Command {
    Insert(Edge),
    Delete(Edge),
    Batch(UpdateBatch),
    /// Forward all residue, barrier every shard, publish a cut, ack it.
    Cut(Sender<Arc<ClusterSnapshot>>),
    /// Reply with each shard service's live metrics.
    Stats(Sender<Vec<gpma_service::ServiceMetrics>>),
    /// Drain everything queued, final-cut, stop the shard services, exit.
    Shutdown,
}

/// Router-side accounting, written by the router thread per forwarding step
/// and read whole by [`GraphCluster::metrics`].
#[derive(Debug, Clone, Default)]
pub(crate) struct RouterCounters {
    /// Updates routed to each shard.
    pub routed: Vec<u64>,
    /// Non-empty sub-batches forwarded to each shard (one modeled DMA
    /// each) — together with `routed`, the raw routing-skew observables.
    pub sub_batches: Vec<u64>,
    /// Modeled host→shard transfer ledger per shard.
    pub transfer: Vec<TransferLedger>,
    /// Routed insertions whose endpoints have different home shards (the
    /// traffic analytics must pay along partition boundaries).
    pub cut_edges: u64,
    /// Pending insertions cancelled in the router by a later same-key
    /// deletion (arrival-order semantics, before the shard even sees them).
    pub cancelled_inserts: u64,
}

/// State shared between producers, the router, and the front object.
struct Shared {
    /// Latest published cut; swapped whole so readers never block the
    /// router for longer than an `Arc` clone.
    snapshot: Mutex<Arc<ClusterSnapshot>>,
    /// Cut-level deltas (epoch = cut number), assembled from the shard
    /// delta logs at every coordinated cut.
    delta_log: Mutex<DeltaLog>,
    /// Cuts whose delta could not be assembled because a shard's ring had
    /// already evicted part of the inter-cut chain (readers rebase on the
    /// full cut instead).
    delta_fallbacks: AtomicU64,
    router: Mutex<RouterCounters>,
    ingested_inserts: AtomicU64,
    ingested_deletes: AtomicU64,
    queries: AtomicU64,
    cuts: AtomicU64,
    started: Instant,
}

/// A cloneable producer handle feeding the cluster's bounded router queue.
///
/// Semantics match the single-shard [`IngestHandle`]: updates from one
/// handle apply in arrival order (insert-then-delete nets to *absent*)
/// regardless of which shard each edge routes to, because the router is a
/// single FIFO stage that cancels pending inserts before forwarding a
/// same-key deletion.
#[derive(Clone)]
pub struct ClusterHandle {
    tx: Sender<Command>,
    shared: Arc<Shared>,
}

impl ClusterHandle {
    /// Stream one edge insertion, blocking while the router queue is full.
    pub fn insert(&self, e: Edge) -> Result<(), ClusterClosed> {
        self.tx.send(Command::Insert(e)).map_err(|_| ClusterClosed)?;
        self.shared.ingested_inserts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Stream one edge deletion, blocking while the router queue is full.
    pub fn delete(&self, e: Edge) -> Result<(), ClusterClosed> {
        self.tx.send(Command::Delete(e)).map_err(|_| ClusterClosed)?;
        self.shared.ingested_deletes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Stream a pre-assembled batch (deletions apply before insertions
    /// within the batch, the framework convention), blocking while the
    /// router queue is full.
    pub fn ingest(&self, batch: UpdateBatch) -> Result<(), ClusterClosed> {
        let (ins, del) = (batch.insertions.len() as u64, batch.deletions.len() as u64);
        self.tx
            .send(Command::Batch(batch))
            .map_err(|_| ClusterClosed)?;
        self.shared.ingested_inserts.fetch_add(ins, Ordering::Relaxed);
        self.shared.ingested_deletes.fetch_add(del, Ordering::Relaxed);
        Ok(())
    }

    /// Commands currently queued at the router (racy, for pacing).
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }
}

/// Final accounting returned by [`GraphCluster::shutdown`].
pub struct ClusterReport {
    /// The final coordinated cut: every accepted update is reflected.
    pub final_snapshot: Arc<ClusterSnapshot>,
    /// Cluster metrics frozen at shutdown (per-shard metrics included).
    pub metrics: ClusterMetrics,
    /// Each shard service's own report (system, final snapshot, metrics),
    /// index-aligned with shard ids.
    pub shard_reports: Vec<ServiceReport>,
    /// The cluster-level [`DeltaMonitor`]s handed back after their thread
    /// observed the final cut (empty when none were registered).
    pub delta_monitors: Vec<Box<dyn DeltaMonitor>>,
}

/// The sharded streaming facade: one ingest stream fanned out across
/// per-shard [`StreamingService`] workers by a [`Partitioner`] policy.
///
/// See the crate docs for the architecture diagram; `examples/
/// sharded_service.rs` is the runnable walkthrough.
pub struct GraphCluster {
    tx: Sender<Command>,
    router: Option<JoinHandle<Vec<ServiceReport>>>,
    delta_monitors: Option<JoinHandle<Vec<Box<dyn DeltaMonitor>>>>,
    shared: Arc<Shared>,
    partitioner: Arc<dyn Partitioner>,
}

impl GraphCluster {
    /// Spawn the cluster: build one simulated device + GPMA+ system per
    /// shard (initial edges routed by the policy), wrap each in a
    /// [`StreamingService`], and start the router thread.
    pub fn spawn(
        cfg: ClusterConfig,
        device_cfg: &DeviceConfig,
        partitioner: Arc<dyn Partitioner>,
        initial_edges: &[Edge],
    ) -> Self {
        Self::spawn_with_delta_monitors(cfg, device_cfg, partitioner, initial_edges, Vec::new())
    }

    /// Spawn with cluster-level [`DeltaMonitor`]s: after every coordinated
    /// cut they receive the cut's merged [`SnapshotDelta`] (or a full
    /// rebase when a shard's ring was outrun) on a dedicated thread — the
    /// incremental read path over globally consistent cuts.
    pub fn spawn_with_delta_monitors(
        cfg: ClusterConfig,
        device_cfg: &DeviceConfig,
        partitioner: Arc<dyn Partitioner>,
        initial_edges: &[Edge],
        delta_monitors: Vec<Box<dyn DeltaMonitor>>,
    ) -> Self {
        let num_shards = partitioner.num_shards();
        assert!(num_shards >= 1);
        let num_vertices = partitioner.num_vertices();
        let mut per_shard: Vec<Vec<Edge>> = vec![Vec::new(); num_shards];
        for e in initial_edges {
            per_shard[partitioner.shard_of_edge(e.src, e.dst)].push(*e);
        }

        let mut services = Vec::with_capacity(num_shards);
        let mut initial_snaps = Vec::with_capacity(num_shards);
        for (i, edges) in per_shard.iter().enumerate() {
            let dev = Device::named(device_cfg.clone(), format!("shard{i}"));
            let sys = DynamicGraphSystem::new(dev, num_vertices, edges, cfg.flush_threshold);
            initial_snaps.push(Arc::new(sys.snapshot()));
            services.push(StreamingService::spawn(
                ServiceConfig {
                    queue_capacity: cfg.shard_queue_capacity,
                    delta_log_capacity: cfg.shard_delta_log_capacity,
                    ..Default::default()
                },
                sys,
            ));
        }

        let initial = Arc::new(ClusterSnapshot::new(0, num_vertices, initial_snaps));
        let shared = Arc::new(Shared {
            snapshot: Mutex::new(initial.clone()),
            delta_log: Mutex::new(DeltaLog::new(cfg.delta_log_capacity)),
            delta_fallbacks: AtomicU64::new(0),
            router: Mutex::new(RouterCounters {
                routed: vec![0; num_shards],
                sub_batches: vec![0; num_shards],
                transfer: vec![TransferLedger::default(); num_shards],
                cut_edges: 0,
                cancelled_inserts: 0,
            }),
            ingested_inserts: AtomicU64::new(0),
            ingested_deletes: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            cuts: AtomicU64::new(0),
            started: Instant::now(),
        });

        let (monitor_handle, cut_tx) = if delta_monitors.is_empty() {
            (None, None)
        } else {
            let (cut_tx, cut_rx) = crossbeam::channel::unbounded::<CutEvent>();
            let handle = std::thread::Builder::new()
                .name("gpma-cluster-deltas".into())
                .spawn(move || run_cut_monitors(initial, cut_rx, delta_monitors))
                .expect("spawn cluster delta-monitor thread");
            (Some(handle), Some(cut_tx))
        };

        let (tx, rx) = bounded(cfg.queue_capacity.max(1));
        let router_shared = shared.clone();
        let router_part = partitioner.clone();
        let router = std::thread::Builder::new()
            .name("gpma-cluster-router".into())
            .spawn(move || {
                run_router(rx, services, router_part, router_shared, cfg.router_batch, cut_tx)
            })
            .expect("spawn cluster router thread");

        GraphCluster {
            tx,
            router: Some(router),
            delta_monitors: monitor_handle,
            shared,
            partitioner,
        }
    }

    /// A new producer handle; clone freely across threads.
    pub fn handle(&self) -> ClusterHandle {
        ClusterHandle {
            tx: self.tx.clone(),
            shared: self.shared.clone(),
        }
    }

    /// The partitioning policy the router applies.
    pub fn partitioner(&self) -> &Arc<dyn Partitioner> {
        &self.partitioner
    }

    /// Number of shards (and shard services / simulated devices).
    pub fn num_shards(&self) -> usize {
        self.partitioner.num_shards()
    }

    /// The latest published coordinated cut (cut 0 until the first
    /// [`Self::epoch_cut`]). Never blocks beyond an `Arc` swap.
    pub fn snapshot(&self) -> Arc<ClusterSnapshot> {
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        self.shared.snapshot.lock().clone()
    }

    /// Run a read against the latest published cut — reads never queue
    /// behind updates.
    pub fn query<R>(&self, f: impl FnOnce(&ClusterSnapshot) -> R) -> R {
        f(&self.snapshot())
    }

    /// Catch a delta reader up from cut number `cut`: the merged per-cut
    /// [`SnapshotDelta`] chain when the cluster ring still covers it (one
    /// delta per coordinated cut, epoch = cut number), or the latest full
    /// cut to rebase on when the reader lagged past
    /// [`ClusterConfig::delta_log_capacity`] cuts (or a shard ring was
    /// outrun between cuts). Never blocks beyond the log lock.
    pub fn deltas_since(&self, cut: u64) -> DeltaCatchUp<Arc<ClusterSnapshot>> {
        let chain = self.shared.delta_log.lock().deltas_since(cut);
        match chain {
            Some(chain) => DeltaCatchUp::Deltas(chain),
            None => DeltaCatchUp::Snapshot(self.shared.snapshot.lock().clone()),
        }
    }

    /// Coordinate a globally consistent epoch cut: every update accepted by
    /// any handle *before* this call is reflected in the returned snapshot
    /// (the router forwards its residue, then barriers every shard).
    /// Updates enqueued concurrently by other producers may be included
    /// too; none accepted after the ack are.
    pub fn epoch_cut(&self) -> Result<Arc<ClusterSnapshot>, ClusterClosed> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Command::Cut(ack_tx))
            .map_err(|_| ClusterClosed)?;
        ack_rx.recv().map_err(|_| ClusterClosed)
    }

    /// Current cluster metrics; fetching per-shard service metrics round-
    /// trips through the router, so this queues behind in-flight updates.
    pub fn metrics(&self) -> Result<ClusterMetrics, ClusterClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Command::Stats(reply_tx))
            .map_err(|_| ClusterClosed)?;
        let shards = reply_rx.recv().map_err(|_| ClusterClosed)?;
        Ok(self.assemble_metrics(shards))
    }

    fn assemble_metrics(&self, shards: Vec<gpma_service::ServiceMetrics>) -> ClusterMetrics {
        let router = self.shared.router.lock().clone();
        ClusterMetrics {
            num_shards: self.num_shards(),
            policy: self.partitioner.name().to_string(),
            cuts: self.shared.cuts.load(Ordering::Relaxed),
            latest_cut: self.shared.snapshot.lock().cut(),
            queue_depth: self.tx.len(),
            ingested_inserts: self.shared.ingested_inserts.load(Ordering::Relaxed),
            ingested_deletes: self.shared.ingested_deletes.load(Ordering::Relaxed),
            queries: self.shared.queries.load(Ordering::Relaxed),
            elapsed_secs: self.shared.started.elapsed().as_secs_f64(),
            routed: router.routed,
            sub_batches: router.sub_batches,
            transfer: router.transfer,
            cut_edges: router.cut_edges,
            cancelled_inserts: router.cancelled_inserts,
            delta_fallbacks: self.shared.delta_fallbacks.load(Ordering::Relaxed),
            shards,
        }
    }

    /// Stop the cluster: drain the router queue, forward all residue, take
    /// a final coordinated cut, shut every shard service down and hand all
    /// reports back. Outstanding [`ClusterHandle`]s get [`ClusterClosed`]
    /// afterwards. Quiesce producer threads first (same contract as
    /// [`StreamingService::shutdown`]).
    pub fn shutdown(mut self) -> ClusterReport {
        let shard_reports = match self.stop_router().expect("cluster router already stopped") {
            Ok(reports) => reports,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let delta_monitors = match self.delta_monitors.take().map(|h| h.join()) {
            Some(Ok(monitors)) => monitors,
            Some(Err(_)) => {
                eprintln!("gpma-cluster: delta-monitor thread panicked; results discarded");
                Vec::new()
            }
            None => Vec::new(),
        };
        let metrics =
            self.assemble_metrics(shard_reports.iter().map(|r| r.metrics.clone()).collect());
        ClusterReport {
            final_snapshot: self.shared.snapshot.lock().clone(),
            metrics,
            shard_reports,
            delta_monitors,
        }
    }

    fn stop_router(&mut self) -> Option<std::thread::Result<Vec<ServiceReport>>> {
        let router = self.router.take()?;
        let _ = self.tx.send(Command::Shutdown);
        Some(router.join())
    }
}

impl Drop for GraphCluster {
    fn drop(&mut self) {
        // Mirror StreamingService::drop: never re-panic out of Drop.
        if let Some(Err(_)) = self.stop_router() {
            eprintln!("gpma-cluster: router thread panicked; state discarded");
        }
        // The router's exit dropped the cut sender; the monitor thread (if
        // still held) drains its queue and finishes.
        if let Some(m) = self.delta_monitors.take() {
            let _ = m.join();
        }
    }
}

/// Events the router publishes to the cluster's delta-monitor thread.
enum CutEvent {
    /// A cut whose inter-cut delta chain was fully assembled.
    Delta(Arc<SnapshotDelta>),
    /// A cut that outran a shard's delta ring: monitors must rebase on the
    /// full merged state.
    Rebase(Arc<ClusterSnapshot>),
}

/// The cluster delta-monitor thread: rebase on the initial state, then feed
/// each coordinated cut's merged delta (or a forced rebase) in cut order.
fn run_cut_monitors(
    initial: Arc<ClusterSnapshot>,
    rx: Receiver<CutEvent>,
    mut monitors: Vec<Box<dyn DeltaMonitor>>,
) -> Vec<Box<dyn DeltaMonitor>> {
    let flat = initial.to_graph_snapshot();
    for m in monitors.iter_mut() {
        m.on_rebase(&flat);
    }
    while let Ok(event) = rx.recv() {
        match event {
            CutEvent::Delta(delta) => {
                for m in monitors.iter_mut() {
                    m.on_delta(&delta);
                }
            }
            CutEvent::Rebase(cut) => {
                let flat = cut.to_graph_snapshot();
                for m in monitors.iter_mut() {
                    m.on_rebase(&flat);
                }
            }
        }
    }
    monitors
}

/// Everything the router loop threads through its helpers.
struct Router {
    handles: Vec<IngestHandle>,
    services: Vec<StreamingService>,
    part: Arc<dyn Partitioner>,
    shared: Arc<Shared>,
    link: Pcie,
    /// Per-shard sub-batches under assembly (deletions before insertions,
    /// the framework batch convention).
    pending: Vec<UpdateBatch>,
    pending_len: usize,
    /// Counters accumulated lock-free in the per-edge routing loop and
    /// published under the single metrics lock [`Self::forward`] already
    /// takes per burst (the same rule the service crate applies to its
    /// ingest hot path).
    local_cut_edges: u64,
    local_cancelled: u64,
    /// Each shard's local epoch at the previous coordinated cut — the
    /// resume points for assembling the next cut's delta chain.
    last_cut_epochs: Vec<u64>,
    /// Feed to the cluster delta-monitor thread, when one exists.
    cut_tx: Option<Sender<CutEvent>>,
}

impl Router {
    /// Buffer one routed update, enforcing arrival-order semantics within
    /// the pending window (a deletion cancels a same-key pending insert on
    /// its shard before being buffered).
    fn route(&mut self, cmd: Command) {
        match cmd {
            Command::Insert(e) => {
                self.route_insert(e);
                self.pending_len += 1;
            }
            Command::Delete(e) => {
                self.route_delete(e);
                self.pending_len += 1;
            }
            Command::Batch(b) => {
                // Batch convention: its deletions precede its insertions,
                // so route deletions first (cancelling only *earlier*
                // pending inserts, never this batch's own).
                self.pending_len += b.len();
                for e in &b.deletions {
                    self.route_delete(*e);
                }
                for e in b.insertions {
                    self.route_insert(e);
                }
            }
            Command::Cut(_) | Command::Stats(_) | Command::Shutdown => {
                unreachable!("route only receives update commands")
            }
        }
    }

    fn route_insert(&mut self, e: Edge) {
        let s = self.part.shard_of_edge(e.src, e.dst);
        if self.part.is_cut_edge(e.src, e.dst) {
            self.local_cut_edges += 1;
        }
        self.pending[s].insertions.push(e);
    }

    fn route_delete(&mut self, e: Edge) {
        let s = self.part.shard_of_edge(e.src, e.dst);
        let key = e.key();
        let before = self.pending[s].insertions.len();
        self.pending[s].insertions.retain(|p| p.key() != key);
        self.local_cancelled += (before - self.pending[s].insertions.len()) as u64;
        self.pending[s].deletions.push(e);
    }

    /// Ship every non-empty per-shard sub-batch: record one modeled DMA per
    /// sub-batch against that shard's ledger (all accounting under one lock
    /// per burst), then forward through the shards' (blocking) ingest
    /// handles — shard backpressure stalls the router, which fills the
    /// cluster queue, which stalls producers.
    fn forward(&mut self) {
        if self.pending_len == 0 {
            return;
        }
        let mut outgoing: Vec<(usize, UpdateBatch)> = Vec::with_capacity(self.pending.len());
        for (i, slot) in self.pending.iter_mut().enumerate() {
            if !slot.is_empty() {
                outgoing.push((i, std::mem::take(slot)));
            }
        }
        {
            let mut c = self.shared.router.lock();
            c.cut_edges += std::mem::take(&mut self.local_cut_edges);
            c.cancelled_inserts += std::mem::take(&mut self.local_cancelled);
            for (i, b) in &outgoing {
                c.routed[*i] += b.len() as u64;
                c.sub_batches[*i] += 1;
                c.transfer[*i].record(&self.link, b.len() * BYTES_PER_UPDATE);
            }
        }
        for (i, b) in outgoing {
            // A closed shard only happens mid-teardown; drop silently like
            // any send into a stopping server.
            let _ = self.handles[i].ingest(b);
        }
        self.pending_len = 0;
    }

    /// Coordinated cut: forward residue, barrier every shard (each ack is
    /// its epoch-stamped snapshot), assemble and publish the cluster cut —
    /// plus the cut's merged delta, stitched from the shard delta rings.
    fn cut(&mut self) -> Arc<ClusterSnapshot> {
        self.forward();
        let snaps: Vec<Arc<GraphSnapshot>> = self
            .services
            .iter()
            .map(|svc| svc.barrier().expect("shard service alive"))
            .collect();
        let cut = self.shared.cuts.fetch_add(1, Ordering::Relaxed) + 1;
        let snap = Arc::new(ClusterSnapshot::new(cut, self.part.num_vertices(), snaps));
        *self.shared.snapshot.lock() = snap.clone();
        self.publish_cut_delta(cut, &snap);
        snap
    }

    /// Assemble the delta between the previous cut and this one: each
    /// shard's inter-cut epoch chain folds into one per-shard delta, and
    /// shards own disjoint edge sets, so their union is the cut's exact net
    /// effect. A shard whose ring already evicted part of its chain forces
    /// a full-snapshot fallback (counted, and pushed as a ring reset so
    /// readers rebase too).
    fn publish_cut_delta(&mut self, cut: u64, snap: &Arc<ClusterSnapshot>) {
        let mut inserted: Vec<Edge> = Vec::new();
        let mut deleted: Vec<u64> = Vec::new();
        let mut lagged = false;
        for (i, svc) in self.services.iter().enumerate() {
            match svc.deltas_since(self.last_cut_epochs[i]) {
                DeltaCatchUp::Deltas(chain) => {
                    let mut folded = SnapshotDelta::default();
                    for d in &chain {
                        folded.merge(d);
                    }
                    inserted.extend_from_slice(folded.inserted());
                    deleted.extend_from_slice(folded.deleted_keys());
                }
                DeltaCatchUp::Snapshot(_) => lagged = true,
            }
            self.last_cut_epochs[i] = snap.shards()[i].epoch();
        }
        if lagged {
            // Readers of the cluster ring must rebase: clear it so
            // `deltas_since` reports the lag, and tell the monitors.
            {
                let mut log = self.shared.delta_log.lock();
                let capacity = log.capacity();
                *log = DeltaLog::new(capacity);
            }
            self.shared.delta_fallbacks.fetch_add(1, Ordering::Relaxed);
            if let Some(tx) = &self.cut_tx {
                let _ = tx.send(CutEvent::Rebase(snap.clone()));
            }
            return;
        }
        inserted.sort_by_key(Edge::key);
        deleted.sort_unstable();
        let delta = Arc::new(SnapshotDelta::from_parts(cut, inserted, deleted));
        self.shared.delta_log.lock().push(delta.clone());
        if let Some(tx) = &self.cut_tx {
            let _ = tx.send(CutEvent::Delta(delta));
        }
    }
}

/// The router loop: block on the queue, coalesce bursts into per-shard
/// sub-batches, forward, serve cuts and stats, and on shutdown drain
/// everything, final-cut and stop the shard services.
fn run_router(
    rx: Receiver<Command>,
    services: Vec<StreamingService>,
    part: Arc<dyn Partitioner>,
    shared: Arc<Shared>,
    router_batch: usize,
    cut_tx: Option<Sender<CutEvent>>,
) -> Vec<ServiceReport> {
    let num_shards = services.len();
    let mut r = Router {
        handles: services.iter().map(|s| s.handle()).collect(),
        services,
        part,
        shared,
        link: Pcie::new(PcieConfig::default()),
        pending: vec![UpdateBatch::default(); num_shards],
        pending_len: 0,
        local_cut_edges: 0,
        local_cancelled: 0,
        last_cut_epochs: vec![0; num_shards],
        cut_tx,
    };
    let router_batch = router_batch.max(1);
    'serve: loop {
        let cmd = match rx.recv() {
            Ok(cmd) => cmd,
            // Front object and every handle dropped: final flush.
            Err(_) => break 'serve,
        };
        if handle_command(cmd, &mut r) {
            break 'serve;
        }
        // Coalesce whatever else is already queued before forwarding, so
        // bursts ship as few, large modeled DMAs.
        let mut stop = false;
        while r.pending_len < router_batch && !stop {
            match rx.try_recv() {
                Ok(cmd) => stop = handle_command(cmd, &mut r),
                Err(_) => break,
            }
        }
        r.forward();
        if stop {
            break 'serve;
        }
    }
    // Shutdown (or disconnect) path: absorb everything still queued, then
    // take the final coordinated cut and stop the shards.
    while let Ok(cmd) = rx.try_recv() {
        match cmd {
            Command::Shutdown => {}
            other => {
                handle_command(other, &mut r);
            }
        }
    }
    r.cut();
    r.handles.clear();
    r.services
        .drain(..)
        .map(|svc| svc.shutdown())
        .collect()
}

/// Apply one command. Returns `true` when the router must begin shutdown.
fn handle_command(cmd: Command, r: &mut Router) -> bool {
    match cmd {
        Command::Insert(_) | Command::Delete(_) | Command::Batch(_) => r.route(cmd),
        Command::Cut(ack) => {
            let _ = ack.send(r.cut());
        }
        Command::Stats(reply) => {
            // Flush residue first so the reply (and the shared counters it
            // is read alongside) reflect everything accepted so far.
            r.forward();
            let _ = reply.send(r.services.iter().map(|s| s.metrics()).collect());
        }
        Command::Shutdown => return true,
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpma_core::multi::{EdgeGridPartition, HashVertexPartition, VertexPartition};
    use gpma_sim::DeviceConfig;

    fn spawn4(policy: Arc<dyn Partitioner>, initial: &[Edge]) -> GraphCluster {
        GraphCluster::spawn(
            ClusterConfig {
                flush_threshold: 4,
                router_batch: 8,
                ..Default::default()
            },
            &DeviceConfig::deterministic(),
            policy,
            initial,
        )
    }

    #[test]
    fn roundtrip_and_cut_under_hash_policy() {
        let part = Arc::new(HashVertexPartition {
            num_vertices: 32,
            num_shards: 4,
        });
        let c = spawn4(part, &[Edge::new(0, 1)]);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.snapshot().cut(), 0);
        let h = c.handle();
        for i in 1..=16u32 {
            h.insert(Edge::new(i, 0)).unwrap();
        }
        let snap = c.epoch_cut().unwrap();
        assert_eq!(snap.cut(), 1);
        assert_eq!(snap.num_edges(), 17);
        let report = c.shutdown();
        assert_eq!(report.metrics.ingested(), 16);
        assert_eq!(report.final_snapshot.num_edges(), 17);
        assert!(report.final_snapshot.cut() > snap.cut());
        assert_eq!(report.shard_reports.len(), 4);
        // Every routed update was charged to a transfer ledger.
        let total = report.metrics.total_transfer();
        assert_eq!(report.metrics.routed.iter().sum::<u64>(), 16);
        assert_eq!(total.bytes, 16 * BYTES_PER_UPDATE as u64);
        assert!(total.time.secs() > 0.0);
    }

    #[test]
    fn arrival_order_wins_across_shard_routing() {
        let part = Arc::new(VertexPartition {
            num_vertices: 16,
            num_shards: 4,
        });
        let c = spawn4(part, &[]);
        let h = c.handle();
        // insert → delete ⇒ absent (cancelled in the router or the shard).
        h.insert(Edge::new(1, 2)).unwrap();
        h.delete(Edge::new(1, 2)).unwrap();
        // delete → insert ⇒ present.
        h.delete(Edge::new(9, 3)).unwrap();
        h.insert(Edge::new(9, 3)).unwrap();
        let snap = c.epoch_cut().unwrap();
        assert!(!snap.contains(1, 2));
        assert!(snap.contains(9, 3));
        let report = c.shutdown();
        assert_eq!(
            report.metrics.cancelled_inserts
                + report
                    .shard_reports
                    .iter()
                    .map(|r| r.metrics.counters.cancelled_inserts)
                    .sum::<u64>(),
            1
        );
    }

    #[test]
    fn handles_fail_after_shutdown() {
        let part = Arc::new(VertexPartition {
            num_vertices: 8,
            num_shards: 2,
        });
        let c = spawn4(part, &[]);
        let h = c.handle();
        drop(c.shutdown());
        assert_eq!(h.insert(Edge::new(1, 2)), Err(ClusterClosed));
        assert_eq!(h.delete(Edge::new(1, 2)), Err(ClusterClosed));
    }

    #[test]
    fn grid_policy_splits_rows_yet_cut_sees_whole_graph() {
        let part = Arc::new(EdgeGridPartition::new(16, 4));
        let c = spawn4(part.clone(), &[]);
        let h = c.handle();
        // Vertex 0's out-row spans both column blocks of grid row 0.
        for d in 1..16u32 {
            h.insert(Edge::new(0, d)).unwrap();
        }
        let snap = c.epoch_cut().unwrap();
        assert_eq!(snap.num_edges(), 15);
        use gpma_analytics::HostGraph;
        assert_eq!(HostGraph::out_degree(&*snap, 0), 15);
        // The row genuinely lives on more than one shard.
        let shards_with_row = snap
            .shards()
            .iter()
            .filter(|s| s.out_degree(0) > 0)
            .count();
        assert!(shards_with_row > 1, "grid should split vertex 0's row");
        let report = c.shutdown();
        assert!(report.metrics.cut_edges > 0);
    }

    #[test]
    fn cut_deltas_replay_to_the_merged_cut() {
        use gpma_core::delta::apply_delta;
        let part = Arc::new(HashVertexPartition {
            num_vertices: 32,
            num_shards: 4,
        });
        let c = spawn4(part, &[Edge::new(0, 1), Edge::new(1, 2)]);
        let cut0 = c.snapshot().to_graph_snapshot();
        let h = c.handle();
        for i in 2..=9u32 {
            h.insert(Edge::new(i, 0)).unwrap();
        }
        h.delete(Edge::new(0, 1)).unwrap();
        c.epoch_cut().unwrap();
        for i in 10..=13u32 {
            h.insert(Edge::new(i, 1)).unwrap();
        }
        let cut2 = c.epoch_cut().unwrap();
        let chain = match c.deltas_since(0) {
            DeltaCatchUp::Deltas(chain) => chain,
            DeltaCatchUp::Snapshot(_) => panic!("ring covers both cuts"),
        };
        assert_eq!(
            chain.iter().map(|d| d.epoch()).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let mut replayed = cut0;
        for d in &chain {
            replayed = apply_delta(&replayed, d);
        }
        let flat = cut2.to_graph_snapshot();
        assert_eq!(replayed.edges(), flat.edges());
        assert_eq!(replayed.epoch(), cut2.cut());
        // Delta bytes are O(|Δ|): the second cut changed 4 edges.
        assert_eq!(chain[1].len(), 4);
        let report = c.shutdown();
        assert_eq!(report.metrics.delta_fallbacks, 0);
    }

    #[test]
    fn cluster_delta_monitors_track_cuts() {
        use gpma_core::delta::SnapshotDelta;
        use gpma_core::framework::GraphSnapshot;
        type Log = Arc<parking_lot::Mutex<Vec<(bool, u64)>>>;
        struct Recorder(Log);
        impl gpma_service::DeltaMonitor for Recorder {
            fn name(&self) -> &str {
                "cut-recorder"
            }
            fn on_rebase(&mut self, snapshot: &GraphSnapshot) {
                self.0.lock().push((true, snapshot.epoch()));
            }
            fn on_delta(&mut self, delta: &SnapshotDelta) {
                self.0.lock().push((false, delta.epoch()));
            }
        }
        let log: Log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let part = Arc::new(VertexPartition {
            num_vertices: 16,
            num_shards: 4,
        });
        let c = GraphCluster::spawn_with_delta_monitors(
            ClusterConfig {
                flush_threshold: 2,
                router_batch: 4,
                ..Default::default()
            },
            &DeviceConfig::deterministic(),
            part,
            &[Edge::new(0, 1)],
            vec![Box::new(Recorder(log.clone()))],
        );
        let h = c.handle();
        for i in 1..=6u32 {
            h.insert(Edge::new(i, 0)).unwrap();
        }
        c.epoch_cut().unwrap();
        let report = c.shutdown();
        assert_eq!(report.delta_monitors.len(), 1);
        let events = log.lock().clone();
        // Initial rebase at cut 0, then one delta per cut (incl. the final
        // shutdown cut), in order.
        assert_eq!(events[0], (true, 0));
        let cuts: Vec<u64> = events[1..].iter().map(|&(_, c)| c).collect();
        assert!(events[1..].iter().all(|&(rebase, _)| !rebase));
        let expect: Vec<u64> = (1..=report.final_snapshot.cut()).collect();
        assert_eq!(cuts, expect);
    }

    #[test]
    fn metrics_round_trip_through_router() {
        let part = Arc::new(VertexPartition {
            num_vertices: 8,
            num_shards: 2,
        });
        let c = spawn4(part, &[Edge::new(0, 1)]);
        let h = c.handle();
        for i in 0..6u32 {
            h.insert(Edge::new(i % 8, (i + 3) % 8)).unwrap();
        }
        c.epoch_cut().unwrap();
        let m = c.metrics().unwrap();
        assert_eq!(m.num_shards, 2);
        assert_eq!(m.shards.len(), 2);
        assert_eq!(m.ingested(), 6);
        assert_eq!(m.cuts, 1);
        assert!(m.elapsed_secs > 0.0);
        let line = m.to_string();
        assert!(line.contains("cut"), "display: {line}");
        drop(c);
    }
}

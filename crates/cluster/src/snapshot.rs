//! Globally consistent cluster snapshots: the read side of the coordinated
//! epoch cut.
//!
//! Each shard service publishes an epoch-stamped
//! [`GraphSnapshot`](gpma_core::framework::GraphSnapshot) when the router
//! barriers it; the cluster assembles them into one [`ClusterSnapshot`]
//! stamped with the cluster-wide *cut* number. Because the router is a
//! single FIFO stage, every update accepted before the cut command was
//! forwarded to its shard before the barriers ran, and none accepted after
//! it leaks in — the cut is a consistent global state without stopping
//! ingest on other handles for longer than the barrier round.

use std::sync::Arc;

use gpma_analytics::HostGraph;
use gpma_core::framework::GraphSnapshot;
use gpma_graph::Edge;

/// An immutable, cut-stamped view over all shard snapshots.
///
/// The shards hold edge-disjoint subsets (each edge has exactly one owner
/// under any [`Partitioner`](gpma_core::multi::Partitioner) policy), so the
/// union over shards *is* the global graph. The snapshot implements
/// [`HostGraph`] by iterating a row across shards — under vertex policies a
/// row lives on one shard, under the edge grid it spans one grid row — so
/// every host analytic (`bfs_host`, `cc_host`, `pagerank_host`) runs on it
/// directly, and the sharded variants run on [`Self::shard_refs`].
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    cut: u64,
    num_vertices: u32,
    shards: Vec<Arc<GraphSnapshot>>,
}

impl ClusterSnapshot {
    /// Assemble a cut from per-shard snapshots (one per shard, index-aligned
    /// with the cluster's shard ids).
    pub fn new(cut: u64, num_vertices: u32, shards: Vec<Arc<GraphSnapshot>>) -> Self {
        ClusterSnapshot {
            cut,
            num_vertices,
            shards,
        }
    }

    /// Cluster-wide cut number: 0 is the initial bulk-built state, each
    /// coordinated epoch cut increments it.
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// Global vertex count (vertex ids are global on every shard).
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of shards that contributed to this cut.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard epoch-stamped snapshots of this cut.
    pub fn shards(&self) -> &[Arc<GraphSnapshot>] {
        &self.shards
    }

    /// Borrowed shard views, in shard order — the input shape the sharded
    /// analytics (`gpma_analytics::bfs_sharded` / `pagerank_sharded`) take.
    pub fn shard_refs(&self) -> Vec<&GraphSnapshot> {
        self.shards.iter().map(|s| s.as_ref()).collect()
    }

    /// Each shard's local epoch at the cut (its flush count).
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    /// Total live edges across all shards.
    pub fn num_edges(&self) -> usize {
        self.shards.iter().map(|s| s.num_edges()).sum()
    }

    /// True when no shard holds a live edge.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Live edges of every shard merged into global row-major key order.
    pub fn merged_edges(&self) -> Vec<Edge> {
        let mut out: Vec<Edge> = Vec::with_capacity(self.num_edges());
        for s in &self.shards {
            out.extend_from_slice(s.edges());
        }
        out.sort_by_key(Edge::key);
        out
    }

    /// Collapse the cut into one flat [`GraphSnapshot`] (epoch := cut) —
    /// the O(E) merged copy, for callers that want single-store semantics.
    pub fn to_graph_snapshot(&self) -> GraphSnapshot {
        GraphSnapshot::from_edges(self.cut, self.num_vertices, self.merged_edges())
    }

    /// True when edge `(src, dst)` was live on any shard at this cut.
    pub fn contains(&self, src: u32, dst: u32) -> bool {
        self.shards.iter().any(|s| s.contains(src, dst))
    }

    /// Weight of `(src, dst)` at this cut, if live (shards are
    /// edge-disjoint, so at most one answers).
    pub fn weight(&self, src: u32, dst: u32) -> Option<u64> {
        self.shards.iter().find_map(|s| s.weight(src, dst))
    }
}

impl HostGraph for ClusterSnapshot {
    fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32, u64)) {
        for s in &self.shards {
            for e in s.neighbors(v) {
                f(e.dst, e.weight);
            }
        }
    }

    fn out_degree(&self, v: u32) -> usize {
        self.shards.iter().map(|s| s.out_degree(v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpma_analytics::{bfs_host, cc_host, component_count};
    use gpma_core::multi::{EdgeGridPartition, Partitioner};

    fn path_edges() -> Vec<Edge> {
        vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::weighted(3, 0, 9),
            Edge::new(5, 6),
        ]
    }

    fn snapshot_under(part: &dyn Partitioner) -> ClusterSnapshot {
        let mut per: Vec<Vec<Edge>> = vec![Vec::new(); part.num_shards()];
        for e in path_edges() {
            per[part.shard_of_edge(e.src, e.dst)].push(e);
        }
        ClusterSnapshot::new(
            3,
            part.num_vertices(),
            per.into_iter()
                .map(|es| Arc::new(GraphSnapshot::from_edges(1, part.num_vertices(), es)))
                .collect(),
        )
    }

    #[test]
    fn merged_view_is_the_whole_graph() {
        let part = EdgeGridPartition::new(8, 4);
        let cs = snapshot_under(&part);
        assert_eq!(cs.cut(), 3);
        assert_eq!(cs.num_edges(), 5);
        assert!(!cs.is_empty());
        assert!(cs.contains(3, 0));
        assert_eq!(cs.weight(3, 0), Some(9));
        assert!(!cs.contains(0, 3));
        let keys: Vec<u64> = cs.merged_edges().iter().map(Edge::key).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, no dupes");
        let flat = cs.to_graph_snapshot();
        assert_eq!(flat.epoch(), 3);
        assert_eq!(flat.num_edges(), 5);
    }

    #[test]
    fn host_graph_over_split_rows_matches_flat_snapshot() {
        // The grid splits vertex 1's row if its dsts land in different
        // column blocks; HostGraph must still see the full row.
        let part = EdgeGridPartition::new(8, 4);
        let cs = snapshot_under(&part);
        let flat = cs.to_graph_snapshot();
        for v in 0..8u32 {
            assert_eq!(
                HostGraph::out_degree(&cs, v),
                HostGraph::out_degree(&flat, v),
                "row {v}"
            );
        }
        assert_eq!(bfs_host(&cs, 0), bfs_host(&flat, 0));
        let labels = cc_host(&cs);
        assert_eq!(component_count(&labels), component_count(&cc_host(&flat)));
    }
}

//! # gpma-cluster — a sharded streaming service over per-device GPMA+ shards
//!
//! `gpma-service` (PR 2) made one simulated GPU a concurrent streaming
//! service; this crate shards that service across *N* devices — the
//! multi-GPU scenario of the paper's §6.6 (Figure 12) expressed as a
//! production-shaped system. One ingest stream fans out through a router to
//! per-shard [`StreamingService`](gpma_service::StreamingService) workers,
//! placement is a pluggable [`Partitioner`] policy, cross-shard traffic is
//! charged against modeled PCIe ledgers, and reads see *globally
//! consistent* coordinated epoch cuts.
//!
//! ```text
//!  producer threads        router thread                shard services
//!  ───────────────         ─────────────                ──────────────
//!  ClusterHandle ─┐  bounded ┌──────────────┐  IngestHandle ┌─────────────┐
//!  ClusterHandle ─┼─► queue ─► Partitioner:  ├──────────────►│ shard 0     │
//!  ClusterHandle ─┘          │  route + coalesce            │ (service +  │
//!                            │  per-shard sub-batches  ...  │  GPMA+ dev) │
//!                            │  → TransferLedger/shard ─────►│ shard N-1   │
//!                            └──────┬───────┘  barrier  └──────┬──────┘
//!                                   │ epoch cut: barrier all,  │ GraphSnapshot
//!                                   ▼ merge, publish           ▼  (per shard)
//!                            ┌────────────────────────────────────┐
//!                            │ ClusterSnapshot (cut M, HostGraph) │──► query()
//!                            └────────────────────────────────────┘    analytics
//! ```
//!
//! * **Routing** — every edge has exactly one owner under any policy
//!   ([`VertexPartition`] ranges, [`HashVertexPartition`] scatter,
//!   [`EdgeGridPartition`] 2D grid), so updates never need inter-shard
//!   communication; the router coalesces bursts and charges one modeled DMA
//!   per forwarded sub-batch ([`TransferLedger`](gpma_sim::pcie::TransferLedger)).
//! * **Consistency** — the router is a single FIFO stage: an
//!   [`epoch_cut`](GraphCluster::epoch_cut) forwards all residue, barriers
//!   every shard, and publishes one [`ClusterSnapshot`]; every update
//!   accepted before the cut is in, none accepted after it leak in.
//!   Arrival-order semantics survive sharding (insert-then-delete nets to
//!   absent even when routed through coalesced sub-batches).
//! * **Analytics** — [`ClusterSnapshot`] implements the host-graph contract
//!   (merged view), and its [`shard_refs`](ClusterSnapshot::shard_refs)
//!   feed the distributed supersteps of
//!   [`gpma_analytics::bfs_sharded`] / [`gpma_analytics::pagerank_sharded`],
//!   which charge explicit frontier / rank exchange traffic.
//! * **Delta cuts** — each coordinated cut also publishes its net effect
//!   as one merged [`SnapshotDelta`] (stitched from the shard delta
//!   rings; shards own disjoint edge sets). Readers catch up with
//!   [`GraphCluster::deltas_since`]; cluster-level [`DeltaMonitor`]s —
//!   e.g. the `gpma-incremental` engine — consume one delta per cut on a
//!   dedicated thread, rebasing on a full snapshot only when a shard ring
//!   was outrun.
//! * **Observability** — [`ClusterMetrics`] reports routing balance and
//!   per-shard skew ([`RoutingSkew`]), cut edges, modeled transfer totals,
//!   delta fallbacks, migration counters ([`MigrationStats`]) and every
//!   shard's own [`ServiceMetrics`](gpma_service::ServiceMetrics).
//! * **Elasticity** — [`GraphCluster::reshard`] migrates live onto any new
//!   [`Partitioner`] (shard counts may grow or shrink): quiesce → minimal
//!   edge-move set ([`MigrationPlan`]) shipped as device-to-device DMAs →
//!   resume under the advanced [`PartitionEpoch`], publishing a
//!   snapshot-style epoch marker so delta readers and monitors rebase
//!   exactly. [`GraphCluster::rebalance`] (or an automatic
//!   [`RebalancePolicy`] in [`ClusterConfig`]) targets a [`DegreePartition`]
//!   built from the router's observed per-vertex load — the skew-driven
//!   answer to the edge grid's ~2× power-law imbalance.
//! * **Durability & failover** — with [`ClusterConfig::recovery`] set, the
//!   router persists per-shard checkpoints (snapshot + trailing delta
//!   chain, hand-rolled binary codec) to a [`CheckpointStore`] at every
//!   cut, detects dead shard workers (failed forwards, or probes on the
//!   control paths), and respawns them from the latest checkpoint + delta
//!   ring + replay-log gap, rejoining oracle-exact. [`FaultPlan`] /
//!   [`GraphCluster::kill_shard`] are the fault-injection hooks the
//!   crash-recovery proptest harness drives; [`RecoveryStats`] summarizes
//!   what failover cost.
//!
//! ## Example: 4 shards, two policies
//!
//! ```
//! use gpma_cluster::{ClusterConfig, GraphCluster, PartitionPolicy};
//! use gpma_graph::Edge;
//! use gpma_sim::DeviceConfig;
//!
//! let policy = PartitionPolicy::VertexHash.build(64, 4);
//! let cluster = GraphCluster::spawn(
//!     ClusterConfig::default(),
//!     &DeviceConfig::deterministic(),
//!     policy,
//!     &[Edge::new(0, 1)],
//! );
//!
//! let h = cluster.handle();
//! for i in 1..32u32 {
//!     h.insert(Edge::new(i, 0)).unwrap();
//! }
//!
//! // A coordinated cut: all 32 updates visible, globally consistent.
//! let snap = cluster.epoch_cut().unwrap();
//! assert_eq!(snap.num_edges(), 32);
//! assert_eq!(snap.cut(), 1);
//!
//! // The merged cut is a host graph: run any host analytic directly.
//! let dist = gpma_analytics::bfs_host(&*snap, 1);
//! assert_eq!(dist[0], 1);
//!
//! let report = cluster.shutdown();
//! assert_eq!(report.metrics.ingested(), 31);
//! ```

#![warn(missing_docs)]

mod cluster;
mod metrics;
mod snapshot;

use std::sync::Arc;

use gpma_core::multi::Partitioner;
pub use gpma_core::multi::{
    DegreePartition, EdgeGridPartition, HashVertexPartition, PartitionEpoch, VertexPartition,
};

pub use cluster::{
    ClusterClosed, ClusterConfig, ClusterHandle, ClusterReport, FaultPlan, GraphCluster,
    RebalancePolicy, RecoveryPolicy, ReshardError, ReshardReport,
};
pub use gpma_core::checkpoint::{CheckpointStore, DirCheckpointStore, MemoryCheckpointStore};
pub use gpma_core::delta::{DeltaCatchUp, SnapshotDelta};
pub use gpma_core::migration::{EdgeMove, MigrationPlan, MigrationSummary};
pub use gpma_service::DeltaMonitor;
pub use metrics::{ClusterMetrics, MigrationStats, RecoveryStats, RoutingSkew};
pub use snapshot::ClusterSnapshot;

/// Named constructor for the shipped partitioning policies — the CLI/bench
/// surface (`repro -- cluster` loops over these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Contiguous vertex ranges ([`VertexPartition`]).
    VertexRange,
    /// Hashed vertex scatter ([`HashVertexPartition`]).
    VertexHash,
    /// 2D edge grid ([`EdgeGridPartition`]).
    EdgeGrid,
}

impl PartitionPolicy {
    /// Every shipped policy, in bench order.
    pub const ALL: [PartitionPolicy; 3] = [
        PartitionPolicy::VertexRange,
        PartitionPolicy::VertexHash,
        PartitionPolicy::EdgeGrid,
    ];

    /// Stable policy name (matches [`Partitioner::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            PartitionPolicy::VertexRange => "vertex-range",
            PartitionPolicy::VertexHash => "vertex-hash",
            PartitionPolicy::EdgeGrid => "edge-grid",
        }
    }

    /// Instantiate the policy over `num_vertices` and `num_shards`.
    pub fn build(&self, num_vertices: u32, num_shards: usize) -> Arc<dyn Partitioner> {
        match self {
            PartitionPolicy::VertexRange => Arc::new(VertexPartition {
                num_vertices,
                num_shards,
            }),
            PartitionPolicy::VertexHash => Arc::new(HashVertexPartition {
                num_vertices,
                num_shards,
            }),
            PartitionPolicy::EdgeGrid => Arc::new(EdgeGridPartition::new(num_vertices, num_shards)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_match_partitioners() {
        for p in PartitionPolicy::ALL {
            assert_eq!(p.name(), p.build(16, 4).name());
            assert_eq!(p.build(16, 4).num_shards(), 4);
        }
    }
}

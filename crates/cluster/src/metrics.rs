//! Cluster-level observability: router accounting, modeled transfer
//! ledgers, and the per-shard service metrics, in one report.

use gpma_service::ServiceMetrics;
use gpma_sim::pcie::TransferLedger;

/// A point-in-time cluster metrics report (see
/// [`GraphCluster::metrics`](crate::GraphCluster::metrics)).
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Number of shards in the cluster.
    pub num_shards: usize,
    /// Partitioning policy name (`vertex-range`, `vertex-hash`,
    /// `edge-grid`).
    pub policy: String,
    /// Coordinated epoch cuts taken so far.
    pub cuts: u64,
    /// Cut number of the latest published [`ClusterSnapshot`]
    /// (`0` = initial bulk-built state).
    ///
    /// [`ClusterSnapshot`]: crate::ClusterSnapshot
    pub latest_cut: u64,
    /// Commands currently queued at the router (racy).
    pub queue_depth: usize,
    /// Insertions accepted by cluster handles.
    pub ingested_inserts: u64,
    /// Deletions accepted by cluster handles.
    pub ingested_deletes: u64,
    /// Snapshot reads served from published cuts.
    pub queries: u64,
    /// Cluster wall-clock age in seconds.
    pub elapsed_secs: f64,
    /// Updates the router shipped to each shard.
    pub routed: Vec<u64>,
    /// Non-empty sub-batches (modeled DMAs) forwarded to each shard.
    pub sub_batches: Vec<u64>,
    /// Modeled host→shard transfer ledger per shard.
    pub transfer: Vec<TransferLedger>,
    /// Routed insertions whose endpoints live on different home shards.
    pub cut_edges: u64,
    /// Pending insertions the router cancelled for arrival-order semantics.
    pub cancelled_inserts: u64,
    /// Coordinated cuts whose delta chain could not be assembled (a shard
    /// ring was outrun); those cuts published as full-snapshot rebases.
    pub delta_fallbacks: u64,
    /// Each shard service's own metrics, index-aligned with shard ids.
    pub shards: Vec<ServiceMetrics>,
}

/// Per-shard routing-skew summary derived from the router's sub-batch and
/// edge counters — the observable behind the edge grid's known ~2×
/// power-law imbalance, and the signal a future elasticity policy (shard
/// splits/merges) will act on.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingSkew {
    /// Updates routed to each shard (edge counts, index = shard id).
    pub updates: Vec<u64>,
    /// Sub-batches (modeled DMAs) forwarded to each shard.
    pub sub_batches: Vec<u64>,
    /// Busiest shard's update count over the per-shard mean
    /// (`1.0` = perfectly balanced; `0.0` with no traffic).
    pub max_mean_updates: f64,
    /// Busiest shard's sub-batch count over the per-shard mean.
    pub max_mean_sub_batches: f64,
}

fn max_over_mean(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 0.0;
    }
    let max = *counts.iter().max().unwrap_or(&0) as f64;
    max / (total as f64 / counts.len() as f64)
}

impl ClusterMetrics {
    /// Total updates accepted (insertions + deletions).
    pub fn ingested(&self) -> u64 {
        self.ingested_inserts + self.ingested_deletes
    }

    /// All shard ledgers merged: cluster-wide modeled transfer totals.
    pub fn total_transfer(&self) -> TransferLedger {
        let mut total = TransferLedger::default();
        for t in &self.transfer {
            total.merge(t);
        }
        total
    }

    /// Fraction of routed insertions crossing home-shard boundaries
    /// (`0.0` with no traffic).
    pub fn cut_fraction(&self) -> f64 {
        if self.ingested_inserts == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.ingested_inserts as f64
        }
    }

    /// Load imbalance of the routing: max shard share over the ideal even
    /// share (`1.0` = perfectly balanced; `0.0` with no traffic).
    pub fn imbalance(&self) -> f64 {
        max_over_mean(&self.routed)
    }

    /// The full per-shard routing-skew report (sub-batch and edge counts
    /// plus max/mean ratios).
    pub fn routing_skew(&self) -> RoutingSkew {
        RoutingSkew {
            updates: self.routed.clone(),
            sub_batches: self.sub_batches.clone(),
            max_mean_updates: max_over_mean(&self.routed),
            max_mean_sub_batches: max_over_mean(&self.sub_batches),
        }
    }

    /// Cluster-level ingest throughput in updates/second of wall-clock.
    pub fn ingest_throughput(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.ingested() as f64 / self.elapsed_secs
        }
    }
}

impl std::fmt::Display for ClusterMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.total_transfer();
        write!(
            f,
            "cluster[{} × {}] cut {} ({} cuts, {} delta fallbacks) | \
             ingested {} (+{} -{}) | \
             routed {:?} in {:?} sub-batches (imbalance {:.2}) | \
             cut-edges {} ({:.1}%) | \
             transfer {} B in {} DMAs ({:.3} ms) | queue {}",
            self.num_shards,
            self.policy,
            self.latest_cut,
            self.cuts,
            self.delta_fallbacks,
            self.ingested(),
            self.ingested_inserts,
            self.ingested_deletes,
            self.routed,
            self.sub_batches,
            self.imbalance(),
            self.cut_edges,
            self.cut_fraction() * 100.0,
            t.bytes,
            t.transfers,
            t.time.millis(),
            self.queue_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpma_sim::pcie::Pcie;
    use gpma_sim::PcieConfig;

    fn metrics() -> ClusterMetrics {
        let link = Pcie::new(PcieConfig::default());
        let mut a = TransferLedger::default();
        a.record(&link, 1000);
        let mut b = TransferLedger::default();
        b.record(&link, 3000);
        ClusterMetrics {
            num_shards: 2,
            policy: "vertex-hash".into(),
            cuts: 3,
            latest_cut: 3,
            queue_depth: 0,
            ingested_inserts: 80,
            ingested_deletes: 20,
            queries: 5,
            elapsed_secs: 2.0,
            routed: vec![75, 25],
            sub_batches: vec![10, 6],
            transfer: vec![a, b],
            cut_edges: 40,
            cancelled_inserts: 1,
            delta_fallbacks: 0,
            shards: Vec::new(),
        }
    }

    #[test]
    fn derived_rates() {
        let m = metrics();
        assert_eq!(m.ingested(), 100);
        assert_eq!(m.total_transfer().bytes, 4000);
        assert_eq!(m.total_transfer().transfers, 2);
        assert!((m.cut_fraction() - 0.5).abs() < 1e-12);
        assert!((m.imbalance() - 1.5).abs() < 1e-12);
        assert!((m.ingest_throughput() - 50.0).abs() < 1e-12);
        let s = m.to_string();
        assert!(s.contains("vertex-hash") && s.contains("cut 3"), "{s}");
    }

    #[test]
    fn routing_skew_reports_both_observables() {
        let m = metrics();
        let skew = m.routing_skew();
        assert_eq!(skew.updates, vec![75, 25]);
        assert_eq!(skew.sub_batches, vec![10, 6]);
        assert!((skew.max_mean_updates - 1.5).abs() < 1e-12);
        assert!((skew.max_mean_sub_batches - 10.0 / 8.0).abs() < 1e-12);
        // No traffic → no skew, no division by zero.
        let empty = ClusterMetrics {
            routed: vec![0, 0],
            sub_batches: vec![0, 0],
            ..metrics()
        };
        assert_eq!(empty.routing_skew().max_mean_updates, 0.0);
        assert_eq!(empty.routing_skew().max_mean_sub_batches, 0.0);
    }
}

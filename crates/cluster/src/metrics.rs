//! Cluster-level observability: router accounting, modeled transfer
//! ledgers, and the per-shard service metrics, in one report.

use gpma_service::ServiceMetrics;
use gpma_sim::pcie::TransferLedger;

/// A point-in-time cluster metrics report (see
/// [`GraphCluster::metrics`](crate::GraphCluster::metrics)).
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Number of shards in the cluster (under the current partition plan).
    pub num_shards: usize,
    /// Partitioning policy name (`vertex-range`, `vertex-hash`,
    /// `edge-grid`, `degree-aware`).
    pub policy: String,
    /// Version of the partition plan in force (0 = spawn-time plan; each
    /// live reshard increments it).
    pub partition_version: u64,
    /// Coordinated epoch cuts taken so far.
    pub cuts: u64,
    /// Cut number of the latest published [`ClusterSnapshot`]
    /// (`0` = initial bulk-built state).
    ///
    /// [`ClusterSnapshot`]: crate::ClusterSnapshot
    pub latest_cut: u64,
    /// Commands currently queued at the router (racy).
    pub queue_depth: usize,
    /// Insertions accepted by cluster handles.
    pub ingested_inserts: u64,
    /// Deletions accepted by cluster handles.
    pub ingested_deletes: u64,
    /// Updates shed by the non-blocking `offer_*` handle paths because the
    /// router queue was full (shed, not blocked — the serving front's
    /// load-shedding ingest policy).
    pub dropped_updates: u64,
    /// Snapshot reads served from published cuts.
    pub queries: u64,
    /// Cluster wall-clock age in seconds.
    pub elapsed_secs: f64,
    /// Updates the router shipped to each shard *under the current
    /// partition plan* (reset by every reshard: this is the skew window
    /// the rebalance policy evaluates).
    pub routed: Vec<u64>,
    /// Non-empty sub-batches (modeled DMAs) forwarded to each shard.
    /// Reset with [`Self::routed`] at every reshard.
    pub sub_batches: Vec<u64>,
    /// Modeled host→shard transfer ledger per shard (current plan).
    pub transfer: Vec<TransferLedger>,
    /// Transfer ledgers of shards retired or reset by reshards, merged —
    /// [`Self::total_transfer`] includes them, so cluster-lifetime totals
    /// stay monotone across plan changes.
    pub retired_transfer: TransferLedger,
    /// Routed insertions whose endpoints live on different home shards.
    pub cut_edges: u64,
    /// Pending insertions the router cancelled for arrival-order semantics.
    pub cancelled_inserts: u64,
    /// Coordinated cuts whose delta chain could not be assembled (a shard
    /// ring was outrun); those cuts published as full-snapshot rebases.
    pub delta_fallbacks: u64,
    /// Errors the router thread recovered from instead of panicking (a
    /// shard service found closed at a barrier, a misrouted control
    /// command). Non-zero means a cut or reshard degraded gracefully —
    /// worth investigating, never fatal.
    pub worker_errors: u64,
    /// Live reshards performed (explicit and policy-triggered).
    pub reshard_count: u64,
    /// Edges migrated between shards across all reshards.
    pub migrated_edges: u64,
    /// Modeled bytes those migrations shipped as device-to-device DMAs.
    pub migration_bytes: u64,
    /// Total wall-clock seconds ingest was actually paused by reshards —
    /// under the copy-on-write protocol only the final swap + residual
    /// replay, bounded by one flush.
    pub migration_pause_secs: f64,
    /// Total wall-clock seconds reshards spent copying and replaying in
    /// the background *while ingest kept flowing* (frozen-cut copy +
    /// delta-chain replay rounds). Not a stall: the complement of
    /// [`Self::migration_pause_secs`].
    pub migration_background_secs: f64,
    /// Dead shard workers detected and respawned (requires
    /// [`ClusterConfig::recovery`](crate::ClusterConfig::recovery)).
    pub recoveries: u64,
    /// Total wall-clock seconds spent in recovery (detect → restore →
    /// replay → respawn), across all recoveries.
    pub recovery_secs: f64,
    /// Epoch deltas replayed from dead workers' rings onto restored
    /// checkpoints across all recoveries.
    pub recovery_replayed_deltas: u64,
    /// Routed updates re-ingested into respawned workers from the router's
    /// replay logs across all recoveries.
    pub recovery_replayed_updates: u64,
    /// Recoveries that could not use checkpoint + delta-chain replay (no
    /// checkpoint yet, a corrupt one, or a ring outrun) and rebased on the
    /// dead worker's last published snapshot instead.
    pub recovery_snapshot_fallbacks: u64,
    /// Per-shard checkpoints persisted to the [`CheckpointStore`]
    /// (cut-cadence checkpoints plus the post-recovery re-checkpoint).
    ///
    /// [`CheckpointStore`]: gpma_core::checkpoint::CheckpointStore
    pub checkpoints_taken: u64,
    /// Total encoded bytes those checkpoints wrote.
    pub checkpoint_bytes: u64,
    /// Each shard service's own metrics, index-aligned with shard ids.
    pub shards: Vec<ServiceMetrics>,
}

/// Migration accounting derived from [`ClusterMetrics`] — the
/// [`RoutingSkew`]-style summary of what elasticity has cost so far.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationStats {
    /// Live reshards performed.
    pub reshards: u64,
    /// Edges that changed owner across all reshards.
    pub migrated_edges: u64,
    /// Modeled device-to-device bytes those moves shipped.
    pub migration_bytes: u64,
    /// Total ingest pause across all reshards, wall-clock seconds — the
    /// swap + residual-replay stall only.
    pub pause_secs: f64,
    /// Mean ingest pause per reshard, wall-clock seconds (`0.0` when no
    /// reshard has run).
    pub avg_pause_secs: f64,
    /// Total background copy-on-write work across all reshards, wall-clock
    /// seconds ingest kept flowing through (frozen-cut copy + replay).
    pub background_secs: f64,
}

/// Failover accounting derived from [`ClusterMetrics`] — what crash
/// recovery has detected, restored and re-ingested so far (the
/// [`MigrationStats`]-style summary for the durability layer).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStats {
    /// Dead shard workers detected and respawned.
    pub recoveries: u64,
    /// Total recovery wall-clock, seconds.
    pub recovery_secs: f64,
    /// Mean recovery wall-clock per incident, seconds (`0.0` when none).
    pub avg_recovery_secs: f64,
    /// Epoch deltas replayed from dead rings onto restored checkpoints.
    pub replayed_deltas: u64,
    /// Routed updates re-ingested from the router's replay logs.
    pub replayed_updates: u64,
    /// Recoveries forced onto a published-snapshot rebase.
    pub snapshot_fallbacks: u64,
    /// Checkpoints persisted so far.
    pub checkpoints_taken: u64,
    /// Encoded bytes those checkpoints wrote.
    pub checkpoint_bytes: u64,
}

/// Per-shard routing-skew summary derived from the router's sub-batch and
/// edge counters — the observable behind the edge grid's known ~2×
/// power-law imbalance, and the signal a future elasticity policy (shard
/// splits/merges) will act on.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingSkew {
    /// Updates routed to each shard (edge counts, index = shard id).
    pub updates: Vec<u64>,
    /// Sub-batches (modeled DMAs) forwarded to each shard.
    pub sub_batches: Vec<u64>,
    /// Busiest shard's update count over the per-shard mean
    /// (`1.0` = perfectly balanced; `0.0` with no traffic).
    pub max_mean_updates: f64,
    /// Busiest shard's sub-batch count over the per-shard mean.
    pub max_mean_sub_batches: f64,
}

fn max_over_mean(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 0.0;
    }
    let max = *counts.iter().max().unwrap_or(&0) as f64;
    max / (total as f64 / counts.len() as f64)
}

impl ClusterMetrics {
    /// Total updates accepted (insertions + deletions).
    pub fn ingested(&self) -> u64 {
        self.ingested_inserts + self.ingested_deletes
    }

    /// All shard ledgers merged (including ledgers retired by reshards):
    /// cluster-wide modeled transfer totals.
    pub fn total_transfer(&self) -> TransferLedger {
        let mut total = self.retired_transfer;
        for t in &self.transfer {
            total.merge(t);
        }
        total
    }

    /// The migration accounting: what live resharding has moved, shipped
    /// and paused so far.
    pub fn migration_stats(&self) -> MigrationStats {
        MigrationStats {
            reshards: self.reshard_count,
            migrated_edges: self.migrated_edges,
            migration_bytes: self.migration_bytes,
            pause_secs: self.migration_pause_secs,
            avg_pause_secs: if self.reshard_count == 0 {
                0.0
            } else {
                self.migration_pause_secs / self.reshard_count as f64
            },
            background_secs: self.migration_background_secs,
        }
    }

    /// The failover accounting: what crash recovery has detected, restored
    /// and re-ingested so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            recoveries: self.recoveries,
            recovery_secs: self.recovery_secs,
            avg_recovery_secs: if self.recoveries == 0 {
                0.0
            } else {
                self.recovery_secs / self.recoveries as f64
            },
            replayed_deltas: self.recovery_replayed_deltas,
            replayed_updates: self.recovery_replayed_updates,
            snapshot_fallbacks: self.recovery_snapshot_fallbacks,
            checkpoints_taken: self.checkpoints_taken,
            checkpoint_bytes: self.checkpoint_bytes,
        }
    }

    /// Fraction of routed insertions crossing home-shard boundaries
    /// (`0.0` with no traffic).
    pub fn cut_fraction(&self) -> f64 {
        if self.ingested_inserts == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.ingested_inserts as f64
        }
    }

    /// Load imbalance of the routing: max shard share over the ideal even
    /// share (`1.0` = perfectly balanced; `0.0` with no traffic).
    pub fn imbalance(&self) -> f64 {
        max_over_mean(&self.routed)
    }

    /// The full per-shard routing-skew report (sub-batch and edge counts
    /// plus max/mean ratios).
    pub fn routing_skew(&self) -> RoutingSkew {
        RoutingSkew {
            updates: self.routed.clone(),
            sub_batches: self.sub_batches.clone(),
            max_mean_updates: max_over_mean(&self.routed),
            max_mean_sub_batches: max_over_mean(&self.sub_batches),
        }
    }

    /// Cluster-level ingest throughput in updates/second of wall-clock.
    pub fn ingest_throughput(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.ingested() as f64 / self.elapsed_secs
        }
    }
}

impl std::fmt::Display for ClusterMetrics {
    // Rendered through the shared `gpma_obs::LineReport` builder so the
    // service and cluster one-liners keep one field-order/unit convention.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.total_transfer();
        let line = gpma_obs::LineReport::new(
            "cluster",
            format_args!("{} × {} v{}", self.num_shards, self.policy, self.partition_version),
        )
        .field("cut", self.latest_cut)
        .annotate(format_args!(
            "{} cuts, {} delta fallbacks",
            self.cuts, self.delta_fallbacks
        ))
        .field("ingested", self.ingested())
        .annotate(format_args!(
            "+{} -{} ({} shed)",
            self.ingested_inserts, self.ingested_deletes, self.dropped_updates
        ))
        .group()
        .raw(format_args!(
            "routed {:?} in {:?} sub-batches",
            self.routed, self.sub_batches
        ))
        .annotate(format_args!("imbalance {:.2}", self.imbalance()))
        .field("cut-edges", self.cut_edges)
        .annotate(format_args!("{:.1}%", self.cut_fraction() * 100.0))
        .group()
        .raw(format_args!(
            "transfer {} in {} DMAs",
            gpma_obs::fmt_bytes(t.bytes),
            t.transfers
        ))
        .annotate(format_args!("{:.3} ms", t.time.millis()))
        .group()
        .field("reshards", self.reshard_count)
        .annotate(format_args!(
            "{} edges, {} moved, {:.1} ms paused + {:.1} ms background",
            self.migrated_edges,
            gpma_obs::fmt_bytes(self.migration_bytes),
            self.migration_pause_secs * 1e3,
            self.migration_background_secs * 1e3,
        ))
        .group()
        .field("recoveries", self.recoveries)
        .annotate(format_args!(
            "{} fallbacks, {:.1} ms",
            self.recovery_snapshot_fallbacks,
            self.recovery_secs * 1e3,
        ))
        .count(self.checkpoints_taken, "ckpts")
        .annotate(format_args!("{}", gpma_obs::fmt_bytes(self.checkpoint_bytes)))
        .group()
        .field("queue", self.queue_depth)
        .field("worker errors", self.worker_errors)
        .finish();
        f.write_str(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpma_sim::pcie::Pcie;
    use gpma_sim::PcieConfig;

    fn metrics() -> ClusterMetrics {
        let link = Pcie::new(PcieConfig::default());
        let mut a = TransferLedger::default();
        a.record(&link, 1000);
        let mut b = TransferLedger::default();
        b.record(&link, 3000);
        ClusterMetrics {
            num_shards: 2,
            policy: "vertex-hash".into(),
            partition_version: 0,
            cuts: 3,
            latest_cut: 3,
            queue_depth: 0,
            ingested_inserts: 80,
            ingested_deletes: 20,
            dropped_updates: 0,
            queries: 5,
            elapsed_secs: 2.0,
            routed: vec![75, 25],
            sub_batches: vec![10, 6],
            transfer: vec![a, b],
            retired_transfer: TransferLedger::default(),
            cut_edges: 40,
            cancelled_inserts: 1,
            delta_fallbacks: 0,
            worker_errors: 0,
            reshard_count: 0,
            migrated_edges: 0,
            migration_bytes: 0,
            migration_pause_secs: 0.0,
            migration_background_secs: 0.0,
            recoveries: 0,
            recovery_secs: 0.0,
            recovery_replayed_deltas: 0,
            recovery_replayed_updates: 0,
            recovery_snapshot_fallbacks: 0,
            checkpoints_taken: 0,
            checkpoint_bytes: 0,
            shards: Vec::new(),
        }
    }

    #[test]
    fn derived_rates() {
        let m = metrics();
        assert_eq!(m.ingested(), 100);
        assert_eq!(m.total_transfer().bytes, 4000);
        assert_eq!(m.total_transfer().transfers, 2);
        assert!((m.cut_fraction() - 0.5).abs() < 1e-12);
        assert!((m.imbalance() - 1.5).abs() < 1e-12);
        assert!((m.ingest_throughput() - 50.0).abs() < 1e-12);
        let s = m.to_string();
        assert!(s.contains("vertex-hash") && s.contains("cut 3"), "{s}");
    }

    #[test]
    fn migration_stats_aggregate_reshard_counters() {
        // No reshards: all-zero stats, no division by zero.
        let idle = metrics();
        assert_eq!(
            idle.migration_stats(),
            MigrationStats {
                reshards: 0,
                migrated_edges: 0,
                migration_bytes: 0,
                pause_secs: 0.0,
                avg_pause_secs: 0.0,
                background_secs: 0.0,
            }
        );
        let m = ClusterMetrics {
            partition_version: 2,
            reshard_count: 2,
            migrated_edges: 700,
            migration_bytes: 14_000,
            migration_pause_secs: 0.5,
            migration_background_secs: 1.25,
            ..metrics()
        };
        let s = m.migration_stats();
        assert_eq!(s.reshards, 2);
        assert_eq!(s.migrated_edges, 700);
        assert_eq!(s.migration_bytes, 14_000);
        // The COW split: the pause wall covers only the settle+swap; the
        // copy/replay wall lands in background_secs, never in pause_secs.
        assert!((s.pause_secs - 0.5).abs() < 1e-12);
        assert!((s.avg_pause_secs - 0.25).abs() < 1e-12);
        assert!((s.background_secs - 1.25).abs() < 1e-12);
        let line = m.to_string();
        assert!(line.contains("reshards 2") && line.contains("v2"), "{line}");
        assert!(
            line.contains("paused") && line.contains("background"),
            "{line}"
        );
    }

    #[test]
    fn recovery_stats_aggregate_failover_counters() {
        // No recoveries: all-zero stats, no division by zero.
        let idle = metrics();
        assert_eq!(
            idle.recovery_stats(),
            RecoveryStats {
                recoveries: 0,
                recovery_secs: 0.0,
                avg_recovery_secs: 0.0,
                replayed_deltas: 0,
                replayed_updates: 0,
                snapshot_fallbacks: 0,
                checkpoints_taken: 0,
                checkpoint_bytes: 0,
            }
        );
        let m = ClusterMetrics {
            recoveries: 2,
            recovery_secs: 0.4,
            recovery_replayed_deltas: 6,
            recovery_replayed_updates: 120,
            recovery_snapshot_fallbacks: 1,
            checkpoints_taken: 5,
            checkpoint_bytes: 10_000,
            ..metrics()
        };
        let s = m.recovery_stats();
        assert_eq!(s.recoveries, 2);
        assert!((s.avg_recovery_secs - 0.2).abs() < 1e-12);
        assert_eq!(s.replayed_deltas, 6);
        assert_eq!(s.replayed_updates, 120);
        assert_eq!(s.snapshot_fallbacks, 1);
        assert_eq!(s.checkpoints_taken, 5);
        assert_eq!(s.checkpoint_bytes, 10_000);
        let line = m.to_string();
        assert!(
            line.contains("recoveries 2") && line.contains("5 ckpts"),
            "{line}"
        );
    }

    #[test]
    fn retired_ledgers_keep_totals_monotone() {
        let link = Pcie::new(PcieConfig::default());
        let mut retired = TransferLedger::default();
        retired.record(&link, 5000);
        let m = ClusterMetrics {
            retired_transfer: retired,
            ..metrics()
        };
        // 4000 live (from the two shard ledgers) + 5000 retired.
        assert_eq!(m.total_transfer().bytes, 9000);
        assert_eq!(m.total_transfer().transfers, 3);
    }

    #[test]
    fn routing_skew_reports_both_observables() {
        let m = metrics();
        let skew = m.routing_skew();
        assert_eq!(skew.updates, vec![75, 25]);
        assert_eq!(skew.sub_batches, vec![10, 6]);
        assert!((skew.max_mean_updates - 1.5).abs() < 1e-12);
        assert!((skew.max_mean_sub_batches - 10.0 / 8.0).abs() < 1e-12);
        // No traffic → no skew, no division by zero.
        let empty = ClusterMetrics {
            routed: vec![0, 0],
            sub_batches: vec![0, 0],
            ..metrics()
        };
        assert_eq!(empty.routing_skew().max_mean_updates, 0.0);
        assert_eq!(empty.routing_skew().max_mean_sub_batches, 0.0);
    }
}

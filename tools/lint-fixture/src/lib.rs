// Seeded gpma-lint violations, one per rule class. This crate is excluded
// from the workspace and never compiled; it only exists to be scanned.
// NOTE: deliberately no missing_docs warn attribute here — that absence is
// the seeded `missing-docs-attr` violation (and the check is textual, so
// this comment must not spell the attribute out).

use std::sync::Mutex;

/// Holds two locks whose declared order (lint.toml) is alpha before beta.
pub struct Pair {
    /// Outermost lock in the declared hierarchy.
    pub alpha: Mutex<u64>,
    /// Innermost lock in the declared hierarchy.
    pub beta: Mutex<u64>,
}

impl Pair {
    /// Seeded `lock-order` violation: acquires beta, then alpha while beta
    /// is still held — the inverse of the declared hierarchy.
    pub fn inverted(&self) -> u64 {
        let beta = self.beta.lock();
        let alpha = self.alpha.lock();
        *beta.unwrap_or_else(|e| e.into_inner()) + *alpha.unwrap_or_else(|e| e.into_inner())
    }
}

/// Seeded `hot-path-alloc` violation: allocates inside an annotated hot path.
// lint: hot-path
pub fn hot_collects(xs: &[u64]) -> u64 {
    let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
    doubled.iter().sum()
}

/// Seeded telemetry-flavored `hot-path-alloc` violation: a histogram-style
/// record path that clones its sample buffer — exactly the allocation the
/// gpma-obs record path must never make.
// lint: hot-path
pub fn hot_record_sample(samples: &[u64], v: u64) -> Vec<u64> {
    let mut log = samples.to_vec();
    log.push(v);
    log
}

/// Seeded serving-flavored `hot-path-alloc` violation: a memoized
/// cache lookup that clones the stored result instead of borrowing it —
/// exactly the allocation the gpma-serving cache-lookup path must never
/// make.
// lint: hot-path
pub fn hot_cache_lookup(
    entries: &std::collections::HashMap<(u32, u64), Vec<u32>>,
    tenant: u32,
    query: u64,
) -> Option<Vec<u32>> {
    entries.get(&(tenant, query)).map(|hit| hit.clone())
}

/// Seeded replay-flavored `hot-path-alloc` violation: a delta-split loop
/// that allocates a fresh per-destination scratch vector for every delta
/// instead of reusing one across the chain — exactly the allocation the
/// gpma-cluster `split_delta_moves` replay path must never make.
// lint: hot-path
pub fn hot_split_replay(deltas: &[Vec<u64>], shards: usize) -> u64 {
    let mut moved = 0u64;
    for chain in deltas {
        let mut scratch: Vec<Vec<u64>> = vec![Vec::new(); shards];
        for &k in chain {
            scratch[(k as usize) % shards].push(k);
        }
        moved += scratch.iter().map(|s| s.len() as u64).sum::<u64>();
    }
    moved
}

/// Seeded `worker-panic` violation: unwraps inside a spawned thread body.
pub fn spawn_and_unwrap(tx: std::sync::mpsc::Sender<u64>) {
    std::thread::spawn(move || {
        tx.send(42).unwrap();
    });
}

/// Seeded `thread-sleep` violation: sleeps in library code.
pub fn lazy_wait() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

// Seeded `missing-docs` violation: a public function with no doc comment.
pub fn undocumented() {}
